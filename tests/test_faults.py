"""Tests for repro.faults: injection, failure semantics, and recovery.

Covers the fault plan validation, every wire-level fault class (drop with
NIC retransmission, loss, duplication with receiver dedup, reordering,
partitions, node stalls), the GASPI timeout/health/purge semantics, the
MPI eager-retransmit and rendezvous-retry paths, and the TAGASPI/TAMPI
recovery policies (re-submit, release, abort).
"""

import numpy as np
import pytest

from repro.core import TAGASPI
from repro.faults import (
    FaultAbort,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    LinkDegradation,
    NodeStall,
    Partition,
    RecoveryPolicy,
    ScriptedFault,
)
from repro.gaspi import (
    GASPI_ERR_TIMEOUT,
    GaspiContext,
    GaspiQueueError,
    GaspiTimeout,
)
from repro.harness import MARENOSTRUM4, fault_sweep_table, run_variants
from repro.mpi import MPIContext, MPIProcDriver
from repro.network import Cluster, INFINIBAND, OMNIPATH
from repro.sim import Engine, derive_rng
from repro.tampi import TAMPI
from repro.tasking import In, Out, Runtime, RuntimeConfig
from tests.conftest import run_all


def make_cluster(plan=None, n_nodes=2, fabric=OMNIPATH, seed=1):
    """Two single-rank nodes with an optional installed fault injector."""
    eng = Engine()
    cl = Cluster(eng, n_nodes, fabric)
    cl.place_ranks_block(n_nodes, 1)
    inj = None
    if plan is not None:
        inj = FaultInjector(plan, eng, rng=derive_rng(seed, "faults"))
        inj.install(cl)
    return eng, cl, inj


def make_gaspi(plan=None, n_queues=4, **kw):
    eng, cl, inj = make_cluster(plan, **kw)
    return eng, GaspiContext(cl, n_queues=n_queues), inj


# ---------------------------------------------------------------------------
# plan validation and emptiness
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_probabilities_validated(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(drop_prob=1.5)
        with pytest.raises(FaultPlanError):
            FaultPlan(dup_prob=-0.1)

    def test_degradation_validated(self):
        with pytest.raises(FaultPlanError):
            LinkDegradation(t0=0.0, t1=1.0, latency_factor=0.5)
        with pytest.raises(FaultPlanError):
            LinkDegradation(t0=0.0, t1=1.0, bandwidth_factor=0.0)
        with pytest.raises(FaultPlanError):
            LinkDegradation(t0=1.0, t1=0.5)

    def test_scripted_action_validated(self):
        with pytest.raises(FaultPlanError):
            ScriptedFault(action="corrupt", src_rank=0, dst_rank=1)

    def test_recovery_policy_validated(self):
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(op_timeout=0.0)
        with pytest.raises(FaultPlanError):
            RecoveryPolicy(op_timeout=1.0, on_exhaustion="panic")

    def test_empty_ignores_recovery(self):
        assert FaultPlan().empty
        assert FaultPlan(recovery=RecoveryPolicy(op_timeout=1.0)).empty
        assert not FaultPlan.mild().empty
        assert not FaultPlan.severe().empty
        assert not FaultPlan(
            scripted=(ScriptedFault("drop", 0, 1),)).empty

    def test_presets_accept_overrides(self):
        p = FaultPlan.mild(drop_prob=0.2)
        assert p.drop_prob == 0.2 and p.dup_prob > 0


# ---------------------------------------------------------------------------
# wire-level faults on the GASPI substrate
# ---------------------------------------------------------------------------
class TestWireFaults:
    def test_scripted_drop_is_retransmitted(self):
        plan = FaultPlan(scripted=(ScriptedFault("drop", 0, 1, kind="write"),))
        eng, g, inj = make_gaspi(plan)
        src = np.arange(16, dtype=np.float64)
        dst = np.zeros(16)
        g.rank(0).segment_register(0, src)
        g.rank(1).segment_register(0, dst)
        g.rank(0).write(0, 0, 1, 0, 0, 16, queue=0)

        def waiter():
            yield from g.rank(0).wait(0)

        run_all(eng, [eng.process(waiter())])
        eng.run()  # drain the retransmitted delivery
        assert np.array_equal(dst, src)
        assert inj.stats.dropped == 1
        assert inj.stats.retransmits == 1
        assert inj.stats.lost == 0
        assert inj.report.count("net.scripted") == 1

    def test_drop_without_nic_ack_is_lost(self):
        plan = FaultPlan(scripted=(ScriptedFault("drop", 0, 1, kind="write"),),
                         nic_ack=False)
        eng, g, inj = make_gaspi(plan)
        dst = np.zeros(8)
        g.rank(0).segment_register(0, np.ones(8))
        g.rank(1).segment_register(0, dst)
        g.rank(0).write(0, 0, 1, 0, 0, 8, queue=0)

        def waiter():
            # local completion still happens: the NIC accepted the message
            yield from g.rank(0).wait(0)

        run_all(eng, [eng.process(waiter())])
        eng.run()
        assert np.array_equal(dst, np.zeros(8))
        assert inj.stats.lost == 1
        assert inj.stats.retransmits == 0

    def test_duplicate_delivered_exactly_once(self):
        plan = FaultPlan(
            scripted=(ScriptedFault("duplicate", 0, 1, kind="write_notify"),))
        eng, g, inj = make_gaspi(plan)
        dst = np.zeros(8)
        g.rank(0).segment_register(0, np.full(8, 3.0))
        g.rank(1).segment_register(0, dst)
        g.rank(0).write_notify(0, 0, 1, 0, 0, 8, notif_id=5, notif_val=7,
                               queue=0)

        def recv():
            nid, val = yield from g.rank(1).notify_waitsome(0, 0, 16)
            return nid, val

        nid, val = eng.run_until_complete(eng.process(recv()))
        eng.run()
        assert (nid, val) == (5, 7)
        assert np.array_equal(dst, np.full(8, 3.0))
        assert inj.stats.duplicated == 1
        assert inj.stats.dup_suppressed == 1
        # the duplicate must not have re-posted the notification
        assert g.rank(1).segment(0).peek(5) is None

    def test_reorder_lets_later_message_overtake(self):
        plan = FaultPlan(
            scripted=(ScriptedFault("reorder", 0, 1, kind="write", nth=1),),
            reorder_delay=100e-6)
        eng, g, inj = make_gaspi(plan)
        dst = np.zeros(2)
        g.rank(0).segment_register(0, np.array([1.0, 2.0]))
        g.rank(1).segment_register(0, dst)
        arrivals = []
        cl = g.rank(1).cluster
        orig = cl._endpoints[(1, "gaspi")]

        def spy(msg):
            arrivals.append(msg.meta["remote_off"])
            orig(msg)

        cl._endpoints[(1, "gaspi")] = spy
        g.rank(0).write(0, 0, 1, 0, 0, 1, queue=0)  # reordered
        g.rank(0).write(0, 1, 1, 0, 1, 1, queue=0)
        eng.run()
        assert np.array_equal(dst, [1.0, 2.0])
        assert inj.stats.reordered == 1
        assert arrivals == [1, 0]  # second write overtook the first

    def test_partition_drops_then_heals(self):
        plan = FaultPlan(partitions=(Partition(t0=0.0, t1=300e-6, nodes=(0,)),),
                         retransmit_rto=50e-6, retransmit_cap=100e-6)
        eng, g, inj = make_gaspi(plan)
        dst = np.zeros(4)
        g.rank(0).segment_register(0, np.ones(4))
        g.rank(1).segment_register(0, dst)
        g.rank(0).write(0, 0, 1, 0, 0, 4, queue=0)
        eng.run()
        assert np.array_equal(dst, np.ones(4))
        assert inj.stats.partition_dropped >= 1
        assert eng.now >= 300e-6  # delivery only after the partition heals

    def test_node_stall_delays_traffic(self):
        stall = 500e-6
        base_eng, base_g, _ = make_gaspi(FaultPlan(
            scripted=(ScriptedFault("drop", 5, 6),)))  # active but never hits
        plan = FaultPlan(stalls=(NodeStall(node=0, t0=0.0, duration=stall),),
                         scripted=(ScriptedFault("drop", 5, 6),))
        eng, g, inj = make_gaspi(plan)
        for gg in (base_g, g):
            gg.rank(0).segment_register(0, np.ones(4))
            gg.rank(1).segment_register(0, np.zeros(4))

        def writer(gg, e):
            # submit after the stall window opened so egress queues behind it
            yield e.timeout(10e-6)
            gg.rank(0).write(0, 0, 1, 0, 0, 4, queue=0)

        base_eng.process(writer(base_g, base_eng))
        eng.process(writer(g, eng))
        base_eng.run()
        eng.run()
        assert inj.stats.stalls == 1
        assert eng.now >= base_eng.now + stall * 0.9

    def test_link_degradation_slows_delivery(self):
        deg = LinkDegradation(t0=0.0, t1=1.0, latency_factor=10.0,
                              bandwidth_factor=0.25)
        plan = FaultPlan(degradations=(deg,))
        eng, g, _inj = make_gaspi(plan)
        base_eng, base_g, _ = make_gaspi(
            FaultPlan(scripted=(ScriptedFault("drop", 5, 6),)))
        for gg in (base_g, g):
            gg.rank(0).segment_register(0, np.ones(1024))
            gg.rank(1).segment_register(0, np.zeros(1024))
        base_g.rank(0).write(0, 0, 1, 0, 0, 1024, queue=0)
        g.rank(0).write(0, 0, 1, 0, 0, 1024, queue=0)
        base_eng.run()
        eng.run()
        assert np.array_equal(g.rank(1).segment(0).view(0, 1024), np.ones(1024))
        assert eng.now > base_eng.now

    def test_probabilistic_faults_need_rng(self):
        # injector with rng=None: probabilistic plan degrades to clean wire
        plan = FaultPlan(drop_prob=1.0)
        eng = Engine()
        cl = Cluster(eng, 2, OMNIPATH)
        cl.place_ranks_block(2, 1)
        inj = FaultInjector(plan, eng).install(cl)
        g = GaspiContext(cl, n_queues=2)
        dst = np.zeros(4)
        g.rank(0).segment_register(0, np.ones(4))
        g.rank(1).segment_register(0, dst)
        g.rank(0).write(0, 0, 1, 0, 0, 4, queue=0)
        eng.run()
        assert np.array_equal(dst, np.ones(4))
        assert inj.stats.dropped == 0


# ---------------------------------------------------------------------------
# GASPI failure semantics: timeouts, health vector, purge
# ---------------------------------------------------------------------------
class TestGaspiTimeouts:
    def test_notify_waitsome_finite_timeout_raises(self):
        eng, g, _ = make_gaspi()  # no faults: plain timeout semantics
        g.rank(1).segment_register(0, np.zeros(4))

        def waiter():
            yield from g.rank(1).notify_waitsome(0, 0, 4, timeout=1e-3)

        with pytest.raises(GaspiTimeout) as ei:
            run_all(eng, [eng.process(waiter())])
        assert ei.value.code == GASPI_ERR_TIMEOUT
        assert ei.value.rank == 1
        assert ei.value.op == "notify_waitsome"
        assert eng.now >= 1e-3

    def test_wait_finite_timeout_raises_on_pending_read(self):
        plan = FaultPlan(scripted=(ScriptedFault("drop", 1, 0,
                                                 kind="read_resp"),),
                         nic_ack=False)
        eng, g, inj = make_gaspi(plan)
        g.rank(0).segment_register(0, np.zeros(8))
        g.rank(1).segment_register(0, np.arange(8, dtype=np.float64))
        g.rank(0).read(0, 0, 1, 0, 0, 8, queue=1)

        def waiter():
            yield from g.rank(0).wait(1, timeout=500e-6)

        with pytest.raises(GaspiTimeout) as ei:
            run_all(eng, [eng.process(waiter())])
        assert ei.value.queue == 1
        assert ei.value.pending == 1
        assert inj.stats.gaspi_timeouts == 1

    def test_request_wait_finite_timeout_raises(self):
        plan = FaultPlan(scripted=(ScriptedFault("drop", 1, 0,
                                                 kind="read_resp"),),
                         nic_ack=False)
        eng, g, inj = make_gaspi(plan)
        g.rank(0).segment_register(0, np.zeros(8))
        g.rank(1).segment_register(0, np.arange(8, dtype=np.float64))
        g.rank(0).read(0, 0, 1, 0, 0, 8, queue=0, tag=9)

        def waiter():
            yield from g.rank(0).request_wait(0, 16, timeout=500e-6)

        with pytest.raises(GaspiTimeout) as ei:
            run_all(eng, [eng.process(waiter())])
        assert ei.value.code == GASPI_ERR_TIMEOUT
        assert "request_wait" in str(ei.value)

    def test_request_wait_finite_timeout_returns_when_done(self):
        eng, g, _ = make_gaspi()
        g.rank(0).segment_register(0, np.zeros(16))
        g.rank(1).segment_register(0, np.zeros(16))
        g.rank(0).write(0, 0, 1, 0, 0, 16, queue=0, tag=3)

        def waiter():
            done = yield from g.rank(0).request_wait(0, 16, timeout=10e-3)
            return done

        done = eng.run_until_complete(eng.process(waiter()))
        assert [r.tag for r in done] == [3]
        assert eng.now < 10e-3  # returned at completion, not at the deadline

    def test_queue_purge_and_state_vector(self):
        plan = FaultPlan(scripted=(ScriptedFault("drop", 1, 0,
                                                 kind="read_resp"),),
                         nic_ack=False)
        eng, g, inj = make_gaspi(plan)
        from repro.gaspi import GASPI_STATE_CORRUPT, GASPI_STATE_HEALTHY
        g.rank(0).segment_register(0, np.zeros(8))
        g.rank(1).segment_register(0, np.arange(8, dtype=np.float64))
        g.rank(0).read(0, 0, 1, 0, 0, 8, queue=0)
        eng.run()  # the response is lost; the request stays inflight
        assert g.rank(0).queues[0].depth == 1
        purged = g.rank(0).queue_purge(0)
        assert purged == 1
        assert g.rank(0).queues[0].depth == 0
        vec = g.rank(0).state_vec_get()
        assert vec[1] == GASPI_STATE_CORRUPT
        g.rank(0).state_reset(1)
        assert g.rank(0).state_vec_get()[1] == GASPI_STATE_HEALTHY
        assert inj.stats.purged == 1

    def test_queue_error_carries_context(self):
        eng, g, _ = make_gaspi()
        with pytest.raises(GaspiQueueError) as ei:
            g.rank(0).write(0, 0, 1, 0, 0, 4, queue=99)
        assert ei.value.rank == 0
        assert ei.value.queue == 99

    def test_negative_timeout_rejected(self):
        from repro.gaspi import GaspiError
        eng, g, _ = make_gaspi()
        with pytest.raises(GaspiError):
            g.rank(0).request_wait(0, 16, timeout=-1.0)


# ---------------------------------------------------------------------------
# MPI failure semantics
# ---------------------------------------------------------------------------
class TestMPIFaults:
    def test_eager_drop_retransmitted_data_intact(self):
        plan = FaultPlan(scripted=(ScriptedFault("drop", 0, 1, kind="eager"),))
        eng, cl, inj = make_cluster(plan)
        mpi = MPIContext(cl)
        out = {}

        def sender(drv):
            req = yield from drv.isend(np.arange(10, dtype=np.float64), 1, tag=3)
            yield from drv.wait(req)

        def receiver(drv):
            buf = np.zeros(10)
            req = yield from drv.irecv(buf, 0, tag=3)
            yield from drv.wait(req)
            out["data"] = buf.copy()

        run_all(eng, [MPIProcDriver(mpi.rank(0)).spawn(sender),
                      MPIProcDriver(mpi.rank(1)).spawn(receiver)])
        assert np.array_equal(out["data"], np.arange(10, dtype=np.float64))
        assert inj.stats.retransmits == 1

    def test_rendezvous_rts_lost_then_retried(self):
        plan = FaultPlan(scripted=(ScriptedFault("drop", 0, 1, kind="rts"),),
                         nic_ack=False, rendezvous_rto=100e-6)
        eng, cl, inj = make_cluster(plan)
        mpi = MPIContext(cl)
        n = 100_000  # rendezvous size
        out = {}

        def sender(drv):
            req = yield from drv.isend(np.arange(n, dtype=np.float64), 1, tag=1)
            yield from drv.wait(req)

        def receiver(drv):
            buf = np.zeros(n)
            req = yield from drv.irecv(buf, 0, tag=1)
            yield from drv.wait(req)
            out["data"] = buf.copy()

        run_all(eng, [MPIProcDriver(mpi.rank(0)).spawn(sender),
                      MPIProcDriver(mpi.rank(1)).spawn(receiver)])
        assert np.array_equal(out["data"], np.arange(n, dtype=np.float64))
        assert mpi.rank(0).stats_rts_retries >= 1
        assert inj.stats.rendezvous_retries >= 1

    def test_duplicated_rts_does_not_double_match(self):
        plan = FaultPlan(scripted=(ScriptedFault("duplicate", 0, 1,
                                                 kind="rts"),))
        eng, cl, inj = make_cluster(plan)
        mpi = MPIContext(cl)
        n = 100_000
        out = {}

        def sender(drv):
            req = yield from drv.isend(np.full(n, 2.0), 1, tag=1)
            yield from drv.wait(req)

        def receiver(drv):
            buf = np.zeros(n)
            req = yield from drv.irecv(buf, 0, tag=1)
            yield from drv.wait(req)
            out["data"] = buf.copy()

        run_all(eng, [MPIProcDriver(mpi.rank(0)).spawn(sender),
                      MPIProcDriver(mpi.rank(1)).spawn(receiver)])
        assert np.array_equal(out["data"], np.full(n, 2.0))


# ---------------------------------------------------------------------------
# recovery policies: TAGASPI re-submit / release / abort, TAMPI release
# ---------------------------------------------------------------------------
def make_tagaspi_pair(plan, recovery, poll_us=50, n_queues=4, seed=1):
    eng, cl, inj = make_cluster(plan, fabric=INFINIBAND, seed=seed)
    g = GaspiContext(cl, n_queues=n_queues)
    rts = [Runtime(eng, RuntimeConfig(n_cores=2), f"rt{r}") for r in range(2)]
    tgs = [TAGASPI(rts[r], g.rank(r), poll_period_us=poll_us,
                   recovery=recovery) for r in range(2)]
    return eng, g, rts, tgs, inj


class TestTagaspiRecovery:
    def _read_main(self, g, tg, local, out):
        def main(rt):
            def read_task(task):
                tg.read(0, 0, 1, 0, 0, 8, queue=0)
            rt.submit(read_task, [Out("buf")], label="read")

            def consume(task):
                out["data"] = local.copy()
            rt.submit(consume, [In("buf")], label="consume")
            yield from rt.taskwait()
        return main

    def test_resubmit_after_timeout_completes(self):
        # first read response is lost; recovery re-submits on a new queue
        plan = FaultPlan(scripted=(ScriptedFault("drop", 1, 0,
                                                 kind="read_resp", nth=1),),
                         nic_ack=False)
        recovery = RecoveryPolicy(op_timeout=300e-6, max_retries=2)
        eng, g, (rt0, rt1), (tg0, tg1), inj = make_tagaspi_pair(plan, recovery)
        local = np.zeros(8)
        g.rank(0).segment_register(0, local)
        g.rank(1).segment_register(0, np.arange(8, dtype=np.float64))
        out = {}
        run_all(eng, [rt0.spawn_main(self._read_main(g, tg0, local, out))])
        assert np.array_equal(out["data"], np.arange(8, dtype=np.float64))
        assert tg0.stats_resubmits == 1
        assert inj.stats.resubmits == 1
        assert inj.stats.gaspi_timeouts >= 1
        assert inj.stats.purged >= 1

    def test_release_after_exhaustion(self):
        # every read response is lost (nth=0): retries exhaust, the task's
        # events are released so the graph completes without the data
        plan = FaultPlan(scripted=(ScriptedFault("drop", 1, 0,
                                                 kind="read_resp", nth=0),),
                         nic_ack=False)
        recovery = RecoveryPolicy(op_timeout=300e-6, max_retries=1,
                                  on_exhaustion="release")
        eng, g, (rt0, rt1), (tg0, tg1), inj = make_tagaspi_pair(plan, recovery)
        local = np.zeros(8)
        g.rank(0).segment_register(0, local)
        g.rank(1).segment_register(0, np.arange(8, dtype=np.float64))
        out = {}
        run_all(eng, [rt0.spawn_main(self._read_main(g, tg0, local, out))])
        assert np.array_equal(out["data"], np.zeros(8))  # data never arrived
        assert tg0.stats_resubmits == 1  # one retry before exhaustion
        assert tg0.stats_releases == 1
        assert inj.stats.released >= 1

    def test_abort_after_exhaustion(self):
        plan = FaultPlan(scripted=(ScriptedFault("drop", 1, 0,
                                                 kind="read_resp", nth=0),),
                         nic_ack=False)
        recovery = RecoveryPolicy(op_timeout=300e-6, max_retries=0,
                                  on_exhaustion="abort")
        eng, g, (rt0, rt1), (tg0, tg1), inj = make_tagaspi_pair(plan, recovery)
        local = np.zeros(8)
        g.rank(0).segment_register(0, local)
        g.rank(1).segment_register(0, np.arange(8, dtype=np.float64))
        out = {}
        with pytest.raises(FaultAbort) as ei:
            run_all(eng, [rt0.spawn_main(self._read_main(g, tg0, local, out))])
        assert ei.value.rank == 0
        assert ei.value.op == "read"
        assert ei.value.report is not None and len(ei.value.report) > 0

    def test_notify_timeout_released_when_producer_lost(self):
        # the producer's write_notify is permanently lost: the *receiver's*
        # notify_iwait has nothing to re-submit, so the policy releases it
        plan = FaultPlan(scripted=(ScriptedFault("drop", 0, 1, nth=0,
                                                 kind="write_notify"),),
                         nic_ack=False)
        recovery = RecoveryPolicy(op_timeout=300e-6, on_exhaustion="release")
        eng, g, (rt0, rt1), (tg0, tg1), inj = make_tagaspi_pair(plan, recovery)
        dst = np.zeros(8)
        g.rank(0).segment_register(0, np.ones(8))
        g.rank(1).segment_register(0, dst)
        done = []

        def sender_main(rt):
            def write(task):
                tg0.write_notify(0, 0, 1, 0, 0, 8, notif_id=0, notif_val=1,
                                 queue=0)
            rt.submit(write, [], label="write")
            yield from rt.taskwait()

        def receiver_main(rt):
            def wait(task):
                tg1.notify_iwait(0, 0)
            rt.submit(wait, [Out("n")], label="wait")

            def after(task):
                done.append(eng.now)
            rt.submit(after, [In("n")], label="after")
            yield from rt.taskwait()

        run_all(eng, [rt0.spawn_main(sender_main),
                      rt1.spawn_main(receiver_main)])
        assert done and done[0] >= 300e-6
        assert np.array_equal(dst, np.zeros(8))
        assert tg1.stats_releases == 1
        assert inj.stats.gaspi_timeouts >= 1

    def test_notify_timeout_abort(self):
        plan = FaultPlan(scripted=(ScriptedFault("drop", 0, 1, nth=0,
                                                 kind="write_notify"),),
                         nic_ack=False)
        recovery = RecoveryPolicy(op_timeout=300e-6, on_exhaustion="abort")
        eng, g, (rt0, rt1), (tg0, tg1), inj = make_tagaspi_pair(plan, recovery)
        g.rank(0).segment_register(0, np.ones(8))
        g.rank(1).segment_register(0, np.zeros(8))

        def sender_main(rt):
            def write(task):
                tg0.write_notify(0, 0, 1, 0, 0, 8, notif_id=0, notif_val=1,
                                 queue=0)
            rt.submit(write, [], label="write")
            yield from rt.taskwait()

        def receiver_main(rt):
            def wait(task):
                tg1.notify_iwait(0, 0)
            rt.submit(wait, [Out("n")], label="wait")
            yield from rt.taskwait()

        with pytest.raises(FaultAbort) as ei:
            run_all(eng, [rt0.spawn_main(sender_main),
                          rt1.spawn_main(receiver_main)])
        assert ei.value.op == "notify_iwait"
        assert ei.value.rank == 1

    def test_clean_run_with_recovery_unaffected(self):
        # a recovery policy alone (no active faults) must not change results
        recovery = RecoveryPolicy(op_timeout=10.0)
        eng, g, (rt0, rt1), (tg0, tg1), _ = make_tagaspi_pair(None, recovery)
        local = np.zeros(8)
        g.rank(0).segment_register(0, local)
        g.rank(1).segment_register(0, np.arange(8, dtype=np.float64))
        out = {}
        run_all(eng, [rt0.spawn_main(self._read_main(g, tg0, local, out))])
        assert np.array_equal(out["data"], np.arange(8, dtype=np.float64))
        assert tg0.stats_resubmits == 0 and tg0.stats_releases == 0


class TestAbortLeavesPollerConsistent:
    """A caller that catches a FaultAbort and keeps polling must see
    consistent recovery state: no duplicated tracked operations (which
    would be re-submitted on every later pass) and no stale pending
    notifications (which would re-abort forever)."""

    def _make(self, on_exhaustion="abort", op_timeout=1e-3):
        recovery = RecoveryPolicy(op_timeout=op_timeout, max_retries=0,
                                  on_exhaustion=on_exhaustion)
        eng, g, rts, tgs, _ = make_tagaspi_pair(None, recovery)
        return eng, g, tgs[0]

    def test_abort_does_not_duplicate_tracked_ops(self):
        from repro.core.tagaspi import _TrackedOp

        eng, g, tg = self._make()
        live = _TrackedOp("read", 0, {}, None, False, 1, deadline=100.0)
        doomed = _TrackedOp("read", 0, {}, None, False, 1, deadline=0.5)
        tg._tracked = [live, doomed]

        with pytest.raises(FaultAbort) as ei:
            tg._check_recovery(now=1.0)
        assert ei.value.op == "read"
        # the survivor appears exactly once; the aborted op is gone
        assert tg._tracked == [live]
        # a second poll past the abort is clean: nothing re-aborts,
        # nothing gets re-submitted
        tg._check_recovery(now=1.0)
        assert tg._tracked == [live]
        assert tg.stats_resubmits == 0

    def test_abort_scans_the_tail_past_the_aborting_op(self):
        from repro.core.tagaspi import _TrackedOp

        eng, g, tg = self._make()
        doomed = _TrackedOp("read", 0, {}, None, False, 1, deadline=0.5)
        done = _TrackedOp("write", 0, {}, None, False, 1, deadline=0.5)
        done.remaining = 0  # completed since the last pass
        tail = _TrackedOp("write", 0, {}, None, False, 1, deadline=100.0)
        tg._tracked = [doomed, done, tail]

        with pytest.raises(FaultAbort):
            tg._check_recovery(now=1.0)
        # completed entries are dropped, the live tail is preserved once
        assert tg._tracked == [tail]

    def test_notification_abort_clears_pending_state(self):
        eng, g, tg = self._make()
        objs = [tg.pool.acquire().assign(0, i, None, None, False,
                                         registered_at=0.0)
                for i in range(2)]
        tg._pending_notifs = list(objs)
        tg.work.notify_work(2)

        with pytest.raises(FaultAbort) as ei:
            tg._check_recovery(now=1.0)
        assert ei.value.op == "notify_iwait"
        # the expired waits were removed *before* the raise and their work
        # units retired — the poller's books balance
        assert tg._pending_notifs == []
        assert tg.work.pending == 0
        # a later poll does not re-abort on the stale entries
        tg._check_recovery(now=2.0)

    def test_caught_notify_abort_then_continue_end_to_end(self):
        # receiver waits on a notification whose producing write_notify is
        # permanently dropped; the caller catches the abort — afterwards
        # the receiver's poller state must be consistent: expired waits
        # gone, work accounting balanced, and a resumed polling pass clean
        plan = FaultPlan(scripted=(ScriptedFault("drop", 0, 1, nth=0,
                                                 kind="write_notify"),),
                         nic_ack=False)
        recovery = RecoveryPolicy(op_timeout=300e-6, on_exhaustion="abort")
        eng, g, (rt0, rt1), (tg0, tg1), inj = make_tagaspi_pair(plan, recovery)
        g.rank(0).segment_register(0, np.ones(8))
        g.rank(1).segment_register(0, np.zeros(8))

        def sender_main(rt):
            def write(task):
                tg0.write_notify(0, 0, 1, 0, 0, 8, notif_id=0, notif_val=1,
                                 queue=0)
            rt.submit(write, [], label="write")
            yield from rt.taskwait()

        def receiver_main(rt):
            def wait(task):
                tg1.notify_iwait(0, 0)
            rt.submit(wait, [Out("n")], label="wait")
            yield from rt.taskwait()

        with pytest.raises(FaultAbort):
            run_all(eng, [rt0.spawn_main(sender_main),
                          rt1.spawn_main(receiver_main)])
        assert tg1._pending_notifs == []
        assert tg1.work.pending == 0
        before = inj.stats.gaspi_timeouts
        # resumed polling passes see no stale entries and never re-abort
        tg1._check_recovery(eng.now + 1.0)
        tg1._check_recovery(eng.now + 2.0)
        assert inj.stats.gaspi_timeouts == before


class TestTampiRecovery:
    def _make(self, recovery, plan=None):
        eng, cl, inj = make_cluster(plan)
        mpi = MPIContext(cl)
        rts = [Runtime(eng, RuntimeConfig(n_cores=2), f"rt{r}") for r in range(2)]
        tps = [TAMPI(rts[r], mpi.rank(r), poll_period_us=50,
                     recovery=recovery) for r in range(2)]
        return eng, mpi, rts, tps, inj

    def test_release_unblocks_never_matched_recv(self):
        recovery = RecoveryPolicy(op_timeout=300e-6, on_exhaustion="release")
        eng, mpi, (rt0, rt1), (tp0, tp1), _ = self._make(recovery)
        done = []

        def main(rt):
            buf = np.zeros(4)

            def recv_task(task):
                req = mpi.rank(1).irecv(buf, 0, tag=9)  # nobody sends
                tp1.iwait(req)
            rt.submit(recv_task, [Out("b")], label="recv")

            def after(task):
                done.append(eng.now)
            rt.submit(after, [In("b")], label="after")
            yield from rt.taskwait()

        run_all(eng, [rt1.spawn_main(main)])
        assert done and done[0] >= 300e-6
        assert tp1.stats_timeouts == 1

    def test_abort_raises_fault_abort(self):
        recovery = RecoveryPolicy(op_timeout=300e-6, on_exhaustion="abort")
        eng, mpi, (rt0, rt1), (tp0, tp1), _ = self._make(recovery)

        def main(rt):
            buf = np.zeros(4)

            def recv_task(task):
                req = mpi.rank(1).irecv(buf, 0, tag=9)
                tp1.iwait(req)
            rt.submit(recv_task, [Out("b")], label="recv")
            yield from rt.taskwait()

        with pytest.raises(FaultAbort) as ei:
            run_all(eng, [rt1.spawn_main(main)])
        assert ei.value.rank == 1


# ---------------------------------------------------------------------------
# applications under faults: completion and numerical correctness
# ---------------------------------------------------------------------------
MACH4 = MARENOSTRUM4.with_cores(4)


class TestAppsUnderFaults:
    def _gs(self, variant, faults):
        from repro.apps.gauss_seidel.runner import GSParams, run_gauss_seidel
        from repro.harness import JobSpec
        params = GSParams(rows=64, cols=64, timesteps=2, block_size=32)
        spec = JobSpec(machine=MACH4, n_nodes=2, variant=variant, seed=1,
                       faults=faults)
        return run_gauss_seidel(spec, params, collect_grid=True)

    def test_straggler_delays_but_gs_converges_identically(self):
        plan = FaultPlan(stalls=(NodeStall(node=0, t0=50e-6, duration=400e-6),),
                         scripted=(ScriptedFault("drop", 5, 6),))
        clean = self._gs("tagaspi", None)
        faulted = self._gs("tagaspi", plan)
        assert np.array_equal(clean.extra["grid"], faulted.extra["grid"])
        assert faulted.sim_time > clean.sim_time
        assert faulted.extra["fault_stalls"] == 1.0

    def test_gs_mpi_survives_eager_drop(self):
        # on a 4-core machine ranks 0-3 sit on node 0 and 4-7 on node 1, so
        # the inter-node halo exchange is the 3<->4 pair
        plan = FaultPlan(scripted=(ScriptedFault("drop", 3, 4, nth=1,
                                                 protocol="mpi"),))
        clean = self._gs("mpi", None)
        faulted = self._gs("mpi", plan)
        assert np.array_equal(clean.extra["grid"], faulted.extra["grid"])
        assert faulted.extra["fault_retransmits"] >= 1.0

    def test_gs_tagaspi_survives_mild_probabilistic_plan(self):
        faulted = self._gs("tagaspi", FaultPlan.mild())
        clean = self._gs("tagaspi", None)
        assert np.array_equal(clean.extra["grid"], faulted.extra["grid"])


# ---------------------------------------------------------------------------
# harness sweep API
# ---------------------------------------------------------------------------
class TestRunVariants:
    def test_sweep_shape_and_counters(self):
        from repro.apps.gauss_seidel.runner import GSParams, run_gauss_seidel
        params = GSParams(rows=64, cols=64, timesteps=2, block_size=32)
        res = run_variants(run_gauss_seidel, MACH4, 2, params,
                           variants=("mpi", "tagaspi"),
                           faults={"none": None, "mild": FaultPlan.mild()})
        assert set(res) == {"mpi", "tagaspi"}
        for variant in res:
            assert set(res[variant]) == {"none", "mild"}
            for r in res[variant].values():
                assert "fault_injected" in r.extra
                assert "fault_retransmits" in r.extra
                assert "fault_timeouts" in r.extra
        assert res["mpi"]["none"].extra["fault_injected"] == 0.0
        table = fault_sweep_table("sweep", res)
        assert "retransmits" in table and "tagaspi" in table

    def test_default_axis_is_fault_free(self):
        from repro.apps.gauss_seidel.runner import GSParams, run_gauss_seidel
        params = GSParams(rows=64, cols=64, timesteps=2, block_size=32)
        res = run_variants(run_gauss_seidel, MACH4, 2, params,
                           variants=("tagaspi",))
        assert set(res["tagaspi"]) == {"none"}
