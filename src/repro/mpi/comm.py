"""Simulated MPI processes: point-to-point, completion, and collectives.

:class:`MPIContext` owns one :class:`MPIRank` per simulated MPI process.
All *call-shaped* methods (``isend``, ``irecv``, ``test``, ``testsome``)
are plain synchronous functions that

1. serialize on the process's global lock (charging the caller's CPU via
   the engine's current execution context), and
2. timestamp their hardware effects at the lock grant, so injection times
   are accurate even under lock contention.

*Blocking* operations (``wait``, ``waitall``, ``barrier``, ``allreduce``,
…) are generators to be driven with ``yield from`` inside a simulated
process; they suspend the caller until completion — the shape of the
optimized MPI-only baselines in the paper's evaluation.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.network.message import Message
from repro.network.topology import Cluster
from repro.mpi.datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    COLLECTIVE_TAG_BASE,
    CONTROL_BYTES,
    buffer_nbytes,
    copy_into,
    validate_tag,
)
from repro.mpi.errors import MPIError
from repro.mpi.matching import MatchingEngine
from repro.mpi.requests import Request, RequestState
from repro.mpi.threading import GlobalLock
from repro.sim.context import AccumulatingSink, charge_current

#: Route :meth:`MPIRank.isend_batch` wire injection through the vectorized
#: :meth:`Cluster.send_batch` path. When ``False`` the same messages go out
#: one :meth:`Cluster.send` at a time with identical per-message departure
#: delays — the scalar oracle the bit-identity tests toggle against.
BATCH_WIRE = True


class MPIContext:
    """A simulated ``MPI_COMM_WORLD`` over a cluster's placed ranks."""

    def __init__(self, cluster: Cluster):
        if cluster.n_ranks == 0:
            raise MPIError("place ranks on the cluster before creating MPIContext")
        self.cluster = cluster
        self.engine = cluster.engine
        self.fabric = cluster.fabric
        self.n_ranks = cluster.n_ranks
        self.ranks: List[MPIRank] = [MPIRank(self, r) for r in range(self.n_ranks)]
        self._windows: list = []  # populated by repro.mpi.rma

    def rank(self, r: int) -> "MPIRank":
        return self.ranks[r]

    def total_time_in_mpi(self) -> float:
        """Aggregate wait+hold time inside the MPI library across ranks —
        the paper's §VI-C "total time inside MPI" metric."""
        return sum(rk.lock.time_in_mpi for rk in self.ranks)

    def total_wait_in_mpi(self) -> float:
        return sum(rk.lock.wait_in_mpi for rk in self.ranks)


class MPIRank:
    """One simulated MPI process."""

    def __init__(self, context: MPIContext, rank: int):
        self.context = context
        self.engine = context.engine
        self.cluster = context.cluster
        self.fabric = context.fabric
        self.rank = rank
        self.lock = GlobalLock(self.engine, rank)
        self.matching = MatchingEngine()
        # per-call counters swept by the harness's MetricsRegistry
        self.stats_isends = 0
        self.stats_irecvs = 0
        self.stats_eager = 0
        self.stats_rendezvous = 0
        #: rendezvous sends awaiting CTS, by sender-side request uid
        self._pending_sends: dict = {}
        #: armed RTS-retry timer per handshake (send request uid -> Event);
        #: cancelled lazily when the CTS lands so defused timers never churn
        #: the event heap
        self._rts_timers: dict = {}
        #: rendezvous recvs awaiting data, by receiver-side request uid
        self._pending_recvs: dict = {}
        #: RTS handshakes already seen (send_uid -> recv_uid or None),
        #: kept only under fault injection to dedup retried RTS
        self._seen_rts: dict = {}
        self.stats_rts_retries = 0
        self._coll_seq = 0
        self.cluster.register_endpoint(rank, "mpi", self._handle)
        # cached costs
        sw = self.fabric.cost
        self._c_call = sw("mpi.call", 0.5e-6)
        self._c_match = sw("mpi.match", 0.3e-6)
        self._c_ts_base = sw("mpi.testsome_base", 0.3e-6)
        self._c_ts_per = sw("mpi.testsome_per_req", 0.05e-6)
        self._eager_max = sw("mpi.eager_threshold", 16 * 1024)
        self._c_handshake = sw("mpi.rendezvous_handshake", 0.3e-6)

    # ------------------------------------------------------------------
    # point-to-point (non-blocking, call-shaped)
    # ------------------------------------------------------------------
    def isend(self, buf: Optional[np.ndarray], dest: int, tag: int) -> Request:
        """Start a non-blocking send; returns the request.

        Messages at most ``mpi.eager_threshold`` bytes go eagerly (buffered
        copy, local completion as soon as the bytes leave the NIC); larger
        ones use the rendezvous protocol (RTS → CTS → data).
        """
        validate_tag(tag)
        self._check_peer(dest)
        nbytes = buffer_nbytes(buf)
        req = Request(self.engine, "send", self.rank, dest, tag, buf, nbytes)
        self.stats_isends += 1
        an = self.engine.analysis
        if an.enabled:
            an.on_mpi_request(req)
        grant = self.lock.enter(self._c_call, "isend")
        depart = grant.end - self.engine.now
        if nbytes <= self._eager_max:
            self.stats_eager += 1
            payload = None if buf is None else np.array(buf, copy=True)
            msg = Message(
                self.rank, dest, "mpi", "eager", nbytes + CONTROL_BYTES, payload,
                meta={"tag": tag},
            )
            local_done = self.cluster.send(msg, depart_delay=depart)
            req.complete_at(local_done)
        else:
            self.stats_rendezvous += 1
            req.state = RequestState.HANDSHAKE
            self._pending_sends[req.uid] = req
            rts = Message(
                self.rank, dest, "mpi", "rts", CONTROL_BYTES, None,
                meta={"tag": tag, "send_uid": req.uid, "nbytes": nbytes},
            )
            self.cluster.send(rts, depart_delay=depart)
            inj = self.cluster.injector
            if (inj is not None and inj.active
                    and inj.plan.rendezvous_retry):
                self._arm_rts_retry(req, dest, tag, nbytes, attempt=0)
        return req

    def isend_batch(self, bufs: Sequence[Optional[np.ndarray]], dest: int,
                    tags: Sequence[int]) -> List[Request]:
        """Start ``len(bufs)`` non-blocking eager sends to ``dest`` in one
        library entry.

        Models a batched injection path: the library lock is acquired once
        for ``n * mpi.call`` seconds and message *j* departs when its slice
        of the hold completes, so the grant arithmetic for a single-message
        batch is bit-identical to :meth:`isend`. The wire side goes through
        :meth:`Cluster.send_batch` (or the per-message :meth:`Cluster.send`
        loop when :data:`BATCH_WIRE` is off — same departure delays, same
        results, which the bit-identity tests assert).

        Any message larger than ``mpi.eager_threshold`` needs the
        rendezvous handshake, which cannot batch; those calls fall back to
        a plain per-message :meth:`isend` sequence.
        """
        if len(bufs) != len(tags):
            raise MPIError(
                f"isend_batch: {len(bufs)} buffers vs {len(tags)} tags")
        if not bufs:
            return []
        self._check_peer(dest)
        sizes = [buffer_nbytes(b) for b in bufs]
        if any(nb > self._eager_max for nb in sizes):
            return [self.isend(b, dest, t) for b, t in zip(bufs, tags)]
        for tag in tags:
            validate_tag(tag)
        n = len(bufs)
        reqs: List[Request] = []
        an = self.engine.analysis
        for buf, tag, nbytes in zip(bufs, tags, sizes):
            req = Request(self.engine, "send", self.rank, dest, tag, buf,
                          nbytes)
            self.stats_isends += 1
            if an.enabled:
                an.on_mpi_request(req)
            reqs.append(req)
        now = self.engine.now
        unit = self._c_call
        grant = self.lock.enter(n * unit, "isend_batch")
        departs = np.empty(n, dtype=np.float64)
        msgs: List[Message] = []
        for j, (buf, tag, nbytes) in enumerate(zip(bufs, tags, sizes)):
            self.stats_eager += 1
            # message j leaves the library when its slice of the hold ends
            departs[j] = (grant.start + (j + 1) * unit) - now
            payload = None if buf is None else np.array(buf, copy=True)
            msgs.append(Message(
                self.rank, dest, "mpi", "eager", nbytes + CONTROL_BYTES,
                payload, meta={"tag": tag},
            ))
        if BATCH_WIRE:
            local_done = self.cluster.send_batch(msgs, depart_delay=departs)
        else:
            local_done = [self.cluster.send(m, depart_delay=float(d))
                          for m, d in zip(msgs, departs)]
        for req, done in zip(reqs, local_done):
            req.complete_at(float(done))
        return reqs

    # -- rendezvous handshake retry (repro.faults) ---------------------
    def _arm_rts_retry(self, req: Request, dest: int, tag: int, nbytes: int,
                       attempt: int) -> None:
        """Schedule a handshake-timeout check: if no CTS arrived by the
        RTO, the library re-sends the RTS (the receiver dedups)."""
        inj = self.cluster.injector
        delay = inj.plan.rendezvous_rto * (2.0 ** attempt)
        ev = self.engine.event()
        ev.add_callback(
            lambda _ev: self._rts_retry(req, dest, tag, nbytes, attempt))
        ev.succeed(delay=delay)
        self._rts_timers[req.uid] = ev

    def _rts_retry(self, req: Request, dest: int, tag: int, nbytes: int,
                   attempt: int) -> None:
        if req.uid not in self._pending_sends:
            self._rts_timers.pop(req.uid, None)
            return  # CTS arrived; handshake done
        inj = self.cluster.injector
        if inj is None or attempt >= inj.plan.max_rendezvous_retries:
            self._rts_timers.pop(req.uid, None)
            return  # give up; NIC-level retransmission may still deliver
        self.stats_rts_retries += 1
        inj.stats.rendezvous_retries += 1
        inj.report.record(self.engine.now, "mpi", "rts_retry", rank=self.rank,
                          dst=dest, tag=tag, attempt=attempt + 1)
        tr = self.engine.tracer
        if tr.enabled:
            tr.instant("faults", "rts_retry", self.engine.now, rank=self.rank,
                       dst=dest, tag=tag, attempt=attempt + 1)
        # the progress engine briefly takes the lock, like the CTS path
        grant = self.lock.enter(self._c_handshake, "rts_retry")
        rts = Message(
            self.rank, dest, "mpi", "rts", CONTROL_BYTES, None,
            meta={"tag": tag, "send_uid": req.uid, "nbytes": nbytes},
        )
        self.cluster.send(rts, depart_delay=grant.end - self.engine.now)
        self._arm_rts_retry(req, dest, tag, nbytes, attempt + 1)

    def irecv(self, buf: Optional[np.ndarray], source: int, tag: int) -> Request:
        """Start a non-blocking receive; returns the request."""
        if tag != ANY_TAG:
            validate_tag(tag)
        if source != ANY_SOURCE:
            self._check_peer(source)
        nbytes = buffer_nbytes(buf)
        req = Request(self.engine, "recv", self.rank, source, tag, buf, nbytes)
        self.stats_irecvs += 1
        an = self.engine.analysis
        if an.enabled:
            an.on_mpi_request(req)
        grant = self.lock.enter(self._c_call, "irecv")
        msg = self.matching.post_recv(req)
        if msg is not None:
            self._satisfy_recv(req, msg, at=grant.end)
        return req

    def _satisfy_recv(self, req: Request, msg: Message, at: float) -> None:
        """Complete a receive from an unexpected-queue message."""
        req.sent_at = msg.injected_at
        if msg.kind == "eager":
            copy_into(req.buf, msg.payload)
            copy_cost = 0.0
            if msg.payload is not None:
                # unexpected eager data is copied out of the internal buffer
                copy_cost = msg.payload.nbytes / self.fabric.intra_bandwidth
                charge_current(self.engine, copy_cost)
            req.complete_at(at + self._c_match + copy_cost)
        elif msg.kind == "rts":
            self._send_cts(req, msg, depart_delay=at - self.engine.now)
        else:  # pragma: no cover - defensive
            raise MPIError(f"unexpected queued message kind {msg.kind!r}")

    def _send_cts(self, req: Request, rts: Message, depart_delay: float) -> None:
        if req.nbytes != rts.meta["nbytes"]:
            raise MPIError(
                f"rendezvous size mismatch r{rts.src_rank}->r{self.rank} "
                f"tag={rts.meta['tag']}: recv {req.nbytes}B vs send {rts.meta['nbytes']}B"
            )
        self._pending_recvs[req.uid] = req
        inj = self.cluster.injector
        if inj is not None and inj.active:
            # remember the handshake so a retried RTS maps back to this recv
            self._seen_rts[rts.meta["send_uid"]] = req.uid
        cts = Message(
            self.rank, rts.src_rank, "mpi", "cts", CONTROL_BYTES, None,
            meta={"send_uid": rts.meta["send_uid"], "recv_uid": req.uid},
        )
        self.cluster.send(cts, depart_delay=depart_delay)

    # ------------------------------------------------------------------
    # completion (call-shaped)
    # ------------------------------------------------------------------
    def test(self, req: Request) -> bool:
        """MPI_Test: one lock round; True if the request completed."""
        self.lock.enter(self._c_ts_base + self._c_ts_per, "test")
        return req.done

    def testsome(self, reqs: Sequence[Request]) -> List[int]:
        """MPI_Testsome: indices of completed requests; lock hold grows with
        the number of requests inspected (the TAMPI poller's cost)."""
        self.lock.enter(self._c_ts_base + self._c_ts_per * len(reqs), "testsome")
        return [i for i, r in enumerate(reqs) if r.done]

    def testsome_timed(self, reqs: Sequence[Request]):
        """Like :meth:`testsome` but also returns the lock grant, so the
        caller (TAMPI's poller) can timestamp downstream effects at the
        moment the lock was actually acquired — under contention, the
        completion *detection* is delayed by the lock wait, which is the
        critical-path effect of §VI-C."""
        grant = self.lock.enter(self._c_ts_base + self._c_ts_per * len(reqs), "testsome")
        return grant, [i for i, r in enumerate(reqs) if r.done]

    # ------------------------------------------------------------------
    # blocking operations (generator-shaped)
    # ------------------------------------------------------------------
    def wait(self, req: Request) -> Generator:
        """MPI_Wait: suspend the calling process until completion."""
        self.lock.enter(self._c_call, "wait")
        if not req.done:
            an = self.engine.analysis
            token = an.wait_enter(self.rank, "mpi_wait", peer=req.peer,
                                  tag=req.tag,
                                  kind=req.kind) if an.enabled else None
            t0 = self.engine.now
            try:
                yield req.event
            finally:
                if an.enabled:
                    an.wait_exit(token)
                tr = self.engine.tracer
                if tr.enabled:
                    tr.span("mpi", "wait.block", t0, self.engine.now,
                            rank=self.rank, kind=req.kind, peer=req.peer,
                            tag=req.tag, sent_at=req.sent_at)

    def waitall(self, reqs: Sequence[Request]) -> Generator:
        """MPI_Waitall over a request list."""
        self.lock.enter(self._c_call, "waitall")
        still = [r for r in reqs if not r.done]
        if still:
            an = self.engine.analysis
            tokens = [an.wait_enter(self.rank, "mpi_waitall", peer=r.peer,
                                    tag=r.tag, kind=r.kind)
                      for r in still] if an.enabled else []
            t0 = self.engine.now
            try:
                yield self.engine.all_of([r.event for r in still])
            finally:
                if an.enabled:
                    for token in tokens:
                        an.wait_exit(token)
                tr = self.engine.tracer
                if tr.enabled:
                    now = self.engine.now
                    for r in still:
                        # per-request blocked interval, clamped to the call
                        done = r.completed_at if r.completed_at is not None else now
                        t1 = min(max(done, t0), now)
                        tr.span("mpi", "waitall.block", t0, t1,
                                rank=self.rank, kind=r.kind, peer=r.peer,
                                tag=r.tag, sent_at=r.sent_at)

    # ------------------------------------------------------------------
    # collectives (generator-shaped, built on point-to-point)
    # ------------------------------------------------------------------
    def _coll_tag(self, round_: int) -> int:
        # 64 rounds per collective epoch is far more than dissemination needs
        return COLLECTIVE_TAG_BASE + (self._coll_seq % (1 << 16)) * 64 + round_

    def coll_tags(self, rounds: int) -> List[int]:
        """Reserve ``rounds`` matched collective tags and advance this
        rank's collective sequence number.

        External collective algorithms (``repro.collectives.twosided``)
        build on point-to-point and need per-round tags that match across
        ranks without colliding with the built-in collectives: as long as
        every rank makes the same collective calls in the same order (the
        MPI contract), the sequence numbers stay aligned and round ``i``
        maps to the same tag everywhere. Blocks of 64 tags are consumed
        per epoch, so ``rounds > 64`` simply reserves several epochs.
        """
        if rounds < 1:
            raise MPIError(f"coll_tags needs rounds >= 1, got {rounds}")
        tags: List[int] = []
        while len(tags) < rounds:
            take = min(rounds - len(tags), 64)
            tags.extend(self._coll_tag(i) for i in range(take))
            self._coll_seq += 1
        return tags

    def barrier(self) -> Generator:
        """Dissemination barrier (log2 rounds of zero-byte messages)."""
        n = self.context.n_ranks
        seq_tags = [self._coll_tag(r) for r in range(64)]
        self._coll_seq += 1
        if n == 1:
            return
        k, round_ = 1, 0
        while k < n:
            dst = (self.rank + k) % n
            src = (self.rank - k) % n
            sreq = self.isend(None, dst, seq_tags[round_])
            rreq = self.irecv(None, src, seq_tags[round_])
            yield from self.waitall([sreq, rreq])
            k *= 2
            round_ += 1

    def gather(self, value: np.ndarray, root: int) -> Generator:
        """Gather equal-size arrays to ``root``; yields the list at root,
        ``None`` elsewhere."""
        n = self.context.n_ranks
        tag = self._coll_tag(0)
        self._coll_seq += 1
        if self.rank == root:
            out: List[Optional[np.ndarray]] = [None] * n
            out[root] = np.array(value, copy=True)
            reqs = []
            for r in range(n):
                if r == root:
                    continue
                buf = np.empty_like(value)
                out[r] = buf
                reqs.append(self.irecv(buf, r, tag))
            yield from self.waitall(reqs)
            return out
        req = self.isend(value, root, tag)
        yield from self.wait(req)
        return None

    def bcast(self, value: np.ndarray, root: int) -> Generator:
        """Binomial-tree broadcast of an array; yields the array everywhere.

        Non-root callers pass a correctly-shaped buffer that is filled in.
        """
        n = self.context.n_ranks
        tag = self._coll_tag(1)
        self._coll_seq += 1
        if n == 1:
            return value
        vrank = (self.rank - root) % n
        # receive from parent (the set bit below which we forward)
        mask = 1
        while mask < n:
            if vrank & mask:
                parent = ((vrank - mask) + root) % n
                req = self.irecv(value, parent, tag)
                yield from self.wait(req)
                break
            mask <<= 1
        # forward to children at all lower bit positions
        mask >>= 1
        reqs = []
        while mask > 0:
            if vrank + mask < n:
                child = (vrank + mask + root) % n
                reqs.append(self.isend(value, child, tag))
            mask >>= 1
        if reqs:
            yield from self.waitall(reqs)
        return value

    def allreduce(self, value: np.ndarray, op=np.add) -> Generator:
        """Allreduce as gather-to-0 + reduce + broadcast; yields the result."""
        arr = np.asarray(value)
        gathered = yield from self.gather(arr, root=0)
        if self.rank == 0:
            acc = gathered[0]
            for part in gathered[1:]:
                acc = op(acc, part)
            result = np.array(acc, copy=True)
        else:
            result = np.empty_like(arr)
        result = yield from self.bcast(result, root=0)
        return result

    # ------------------------------------------------------------------
    # network endpoint
    # ------------------------------------------------------------------
    def _handle(self, msg: Message) -> None:
        if msg.kind in ("eager", "rts"):
            if msg.kind == "rts":
                inj = self.cluster.injector
                if inj is not None and inj.active:
                    uid = msg.meta["send_uid"]
                    if uid in self._seen_rts:
                        # retried RTS for a handshake we already processed:
                        # if our CTS may have been lost (data not yet here),
                        # re-issue it; never re-match against another recv
                        recv_uid = self._seen_rts[uid]
                        req = (self._pending_recvs.get(recv_uid)
                               if recv_uid is not None else None)
                        if req is not None:
                            self._send_cts(req, msg, depart_delay=0.0)
                        return
                    self._seen_rts[uid] = None
            req = self.matching.incoming(msg)
            if req is None:
                return  # buffered as unexpected
            req.sent_at = msg.injected_at
            if msg.kind == "eager":
                copy_into(req.buf, msg.payload)
                req.complete_at(self.engine.now + self._c_match)
            else:
                self._send_cts(req, msg, depart_delay=0.0)
        elif msg.kind == "cts":
            send_req = self._pending_sends.pop(msg.meta["send_uid"], None)
            if send_req is None:
                return  # duplicate CTS from an RTS retry race; data is on its way
            # defuse the armed retry timer: lazy cancellation drops the
            # heap entry without firing a no-op retry event
            timer = self._rts_timers.pop(send_req.uid, None)
            if timer is not None:
                timer.cancel()
            # the library's progress engine injects the data transfer;
            # it briefly takes the lock (interfering with user calls) but
            # charges no user task.
            grant = self.lock.enter(self._c_handshake, "rendezvous_cts")
            data = Message(
                self.rank,
                msg.src_rank,
                "mpi",
                "data",
                send_req.nbytes + CONTROL_BYTES,
                np.array(send_req.buf, copy=True),
                meta={"recv_uid": msg.meta["recv_uid"]},
            )
            local_done = self.cluster.send(data, depart_delay=grant.end - self.engine.now)
            send_req.complete_at(local_done)
        elif msg.kind == "data":
            recv_req = self._pending_recvs.pop(msg.meta["recv_uid"], None)
            if recv_req is None:
                # duplicate data after a CTS retry race; already satisfied
                inj = self.cluster.injector
                if inj is not None and inj.active:
                    return
                raise MPIError(f"data for unknown recv {msg.meta['recv_uid']}")
            copy_into(recv_req.buf, msg.payload)
            recv_req.complete_at(self.engine.now + self._c_match)
        else:
            raise MPIError(f"unknown mpi message kind {msg.kind!r}")

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.context.n_ranks:
            raise MPIError(f"peer rank {peer} out of range [0, {self.context.n_ranks})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MPIRank {self.rank}/{self.context.n_ranks}>"


class MPIProcDriver:
    """Convenience wrapper for writing **MPI-only** rank processes.

    Wraps an :class:`MPIRank` so that each call realizes its charged CPU
    time as simulated delay immediately, which is the right model for a
    single-threaded MPI process (the paper's pure-MPI baselines)::

        def main(drv):
            req = yield from drv.isend(buf, dest, tag)
            yield from drv.compute(seconds)
            yield from drv.waitall([req, ...])

    The driver's process must be created with
    ``engine.process(main(drv))`` and assigned ``drv.sink`` as its context —
    :meth:`spawn` does both.
    """

    def __init__(self, mpi_rank: MPIRank):
        self.mpi = mpi_rank
        self.engine = mpi_rank.engine
        self.sink = AccumulatingSink()

    def spawn(self, body_factory) -> "object":
        """Start ``body_factory(self)`` as this rank's main process."""
        proc = self.engine.process(body_factory(self))
        proc.context = self.sink
        proc.name = f"mpi-only.rank{self.mpi.rank}"
        return proc

    def _realize(self) -> Generator:
        dt = self.sink.take()
        if dt > 0.0:
            yield self.engine.timeout(dt)

    def compute(self, seconds: float) -> Generator:
        """Occupy this rank's (single) core for ``seconds``."""
        yield from self._realize()
        if seconds > 0.0:
            t0 = self.engine.now
            yield self.engine.timeout(seconds)
            tr = self.engine.tracer
            if tr.enabled:
                # useful-work span for the single-threaded MPI baselines
                # (repro.perf derives per-rank efficiency from these)
                tr.span("proc", "compute", t0, self.engine.now,
                        rank=self.mpi.rank)

    def isend(self, buf, dest: int, tag: int) -> Generator:
        req = self.mpi.isend(buf, dest, tag)
        yield from self._realize()
        return req

    def isend_batch(self, bufs, dest: int, tags) -> Generator:
        """Issue ``len(bufs)`` sends to ``dest`` in one library entry and
        realize the whole charge once (see :meth:`MPIRank.isend_batch`)."""
        reqs = self.mpi.isend_batch(bufs, dest, tags)
        yield from self._realize()
        return reqs

    def irecv(self, buf, source: int, tag: int) -> Generator:
        req = self.mpi.irecv(buf, source, tag)
        yield from self._realize()
        return req

    def wait(self, req: Request) -> Generator:
        yield from self._realize()
        yield from self.mpi.wait(req)
        yield from self._realize()

    def waitall(self, reqs: Sequence[Request]) -> Generator:
        yield from self._realize()
        yield from self.mpi.waitall(reqs)
        yield from self._realize()

    def barrier(self) -> Generator:
        yield from self._realize()
        yield from self.mpi.barrier()
        yield from self._realize()

    def allreduce(self, value, op=np.add) -> Generator:
        yield from self._realize()
        result = yield from self.mpi.allreduce(value, op)
        yield from self._realize()
        return result
