"""Fabric parameterization.

A :class:`Fabric` is a pure-data description of interconnect behaviour. All
times are seconds, all sizes bytes, bandwidths bytes/second.

The ``sw`` table carries per-protocol software costs. Keys used by the
substrates:

``mpi.call``
    CPU time an MPI call (Isend/Irecv/Test/Testsome/Wait entry) spends
    inside the library *holding the global lock* under
    ``MPI_THREAD_MULTIPLE``. This single number drives the paper's §VI-C
    contention analysis.
``mpi.match``
    Receiver-side matching cost added to a two-sided message's completion.
``mpi.eager_threshold``
    Messages at most this size use the eager protocol; larger ones use
    rendezvous (RTS → CTS → data), which costs an extra round trip.
``mpi.rma_put`` / ``mpi.rma_flush_rtt``
    One-sided MPI costs; flush pays an acknowledgement round trip
    (Belli & Hoefler 2015, discussed in paper §III).
``gaspi.op``
    CPU time a GASPI operation submission spends holding its *queue* lock.
    Orders of magnitude less contended than ``mpi.call`` because queues are
    multiplexed per connection rather than per process.
``gaspi.notify``
    Extra wire payload-free notification handling cost at the target.
``mpi.jitter`` / ``gaspi.jitter``
    Relative standard deviation of lognormal latency noise per protocol
    (CTE-AMD's Open MPI showed much higher run-to-run variability in the
    paper's Fig. 13 error bars).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class Fabric:
    """Interconnect + communication-software cost model."""

    name: str
    #: base one-way latency between two different nodes (seconds)
    latency: float
    #: per-NIC bandwidth (bytes/second); egress and ingress are separate
    bandwidth: float
    #: one-way latency between ranks on the same node (shared memory path)
    intra_latency: float
    #: shared-memory copy bandwidth for node-local messages
    intra_bandwidth: float
    #: per-message NIC occupancy (packet processing), seconds — the
    #: message-rate limit that makes many small messages from many ranks
    #: on one node far worse than few large ones
    msg_overhead: float = 0.0
    #: per-protocol software costs, see module docstring
    sw: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.latency < 0 or self.intra_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth <= 0 or self.intra_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    def cost(self, key: str, default: float = 0.0) -> float:
        """Look up a software cost with a default."""
        return self.sw.get(key, default)

    def serialization(self, nbytes: int, intra: bool) -> float:
        """Wire/copy occupancy time for a message of ``nbytes``."""
        if intra:
            return nbytes / self.intra_bandwidth
        return self.msg_overhead + nbytes / self.bandwidth

    def serialization_batch(self, nbytes, intra: bool) -> "np.ndarray":
        """Vectorized :meth:`serialization` over an array of sizes.

        Bit-exact contract: ``serialization_batch(a, i)[k] ==
        serialization(a[k], i)`` for every element — the expression applies
        the same IEEE-754 operations in the same order per element
        (divide, then add the scalar overhead), so the batched wire path
        produces the same times as a scalar send loop
        (tests/test_network.py sweeps the eager/rendezvous boundary on
        both fabrics)."""
        arr = np.asarray(nbytes, dtype=np.float64)
        if intra:
            return arr / self.intra_bandwidth
        return self.msg_overhead + arr / self.bandwidth

    def base_latency(self, intra: bool) -> float:
        return self.intra_latency if intra else self.latency

    def with_costs(self, **overrides: float) -> "Fabric":
        """Return a copy with some ``sw`` entries replaced (ablations)."""
        sw = dict(self.sw)
        sw.update(overrides)
        return replace(self, sw=sw)
