"""Collective-heavy conjugate-gradient mini-app.

Unlike the paper's three halo-exchange applications, CG's communication is
*all collectives*: one allgather (the search direction) and two allreduces
(the dot products) per iteration, plus a broadcast of the right-hand side
and barriers around the timed region. That makes it the benchmark that
separates the three collective backends of :mod:`repro.collectives`
(``JobSpec.backend``) — and, with ``staleness > 0`` on the GASPI backend,
a demonstrator for the eventually consistent allreduce under network
partitions (docs/collectives.md).
"""

from repro.apps.cg.common import CGParams, cg_matrix, cg_reference, cg_rhs
from repro.apps.cg.runner import run_cg

__all__ = ["CGParams", "cg_matrix", "cg_reference", "cg_rhs", "run_cg"]
