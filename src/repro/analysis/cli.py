"""``python -m repro.analysis`` — the correctness-analysis command line.

Three subcommands:

* ``lint [paths...]`` — static determinism lint (stdlib-ast, no
  simulation); exits 1 on findings. The CI gate runs
  ``python -m repro.analysis lint src/ examples/ benchmarks/ tests/``.
* ``verify [paths...]`` — CFG/dataflow protocol verifier
  (:mod:`repro.analysis.static`); exits 1 on findings. ``--exclude``
  skips subtrees (CI excludes the seeded-bad ``examples/static/``).
  Also installed as the ``repro-verify`` console script.
* ``sweep`` — run the paper variants of Gauss–Seidel and Streaming at
  small parameters with every dynamic checker enabled in strict mode
  (``JobSpec(check="strict")``); exits 1 if any variant produces an
  error-severity finding. The CI gate's dynamic half.

``lint`` and ``verify`` take ``--format json`` to emit findings as a
JSON array of ``{path, line, col, rule, message}`` objects for CI and
editor integration; findings are sorted by ``(path, line, col, rule)``
either way.
"""

from __future__ import annotations

import argparse
import json
import sys

from typing import List, Optional

from repro.analysis.lint import LintFinding, lint_paths


def _emit(findings: List[LintFinding], paths: List[str], fmt: str,
          what: str) -> int:
    if fmt == "json":
        print(json.dumps([
            {"path": f.path, "line": f.line, "col": f.col,
             "rule": f.rule, "message": f.message}
            for f in findings], indent=2))
        return 1 if findings else 0
    for f in findings:
        print(f)
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print(f"{what} clean ({', '.join(paths)})")
    return 0


def _cmd_lint(args) -> int:
    return _emit(lint_paths(args.paths), args.paths, args.format, "lint")


def _cmd_verify(args) -> int:
    # imported lazily so plain lint stays a two-module import
    from repro.analysis.static import verify_paths

    findings = verify_paths(args.paths, exclude=args.exclude)
    return _emit(findings, args.paths, args.format, "verify")


def _cmd_sweep(args) -> int:
    # imported lazily: the lint subcommand must not pull in numpy/harness
    from repro.analysis.pipeline import AnalysisError
    from repro.apps.gauss_seidel import GSParams, run_gauss_seidel
    from repro.apps.streaming import StreamingParams, run_streaming
    from repro.harness import MARENOSTRUM4, JobSpec

    mach = MARENOSTRUM4.with_cores(args.cores)
    points = [
        ("gs", run_gauss_seidel,
         GSParams(rows=32, cols=32, timesteps=2, block_size=16,
                  compute_data=False)),
        ("streaming", run_streaming,
         StreamingParams(chunks=4, elements_per_chunk=512, block_size=128,
                         compute_data=False)),
    ]
    failures = 0
    for app, run_fn, params in points:
        for variant in ("mpi", "tampi", "tagaspi"):
            spec = JobSpec(machine=mach, n_nodes=args.nodes, variant=variant,
                           seed=args.seed, check="strict")
            try:
                res = run_fn(spec, params)
            except AnalysisError as exc:
                failures += 1
                print(f"FAIL {app}/{variant}: {exc}")
                continue
            print(f"ok   {app}/{variant}: sim_time={res.sim_time:.6g}s, "
                  f"0 error findings")
    if failures:
        print(f"{failures} strict-checked point(s) failed")
        return 1
    print("checked sweep clean (all variants race/deadlock-free)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="correctness analysis: static determinism lint, "
                    "CFG/dataflow protocol verifier, and strict-checked "
                    "variant sweep")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_lint = sub.add_parser("lint", help="static determinism lint")
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    p_lint.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    p_lint.set_defaults(fn=_cmd_lint)

    p_verify = sub.add_parser(
        "verify", help="CFG/dataflow communication-protocol verifier")
    p_verify.add_argument("paths", nargs="*", default=["src"],
                          help="files or directories (default: src)")
    p_verify.add_argument("--format", choices=("text", "json"),
                          default="text", help="output format")
    p_verify.add_argument("--exclude", action="append", default=[],
                          metavar="PATH",
                          help="subtree to skip (repeatable; CI excludes "
                               "the seeded-bad examples/static/)")
    p_verify.set_defaults(fn=_cmd_verify)

    p_sweep = sub.add_parser(
        "sweep", help="run small paper variants with check=strict")
    p_sweep.add_argument("--nodes", type=int, default=2)
    p_sweep.add_argument("--cores", type=int, default=4)
    p_sweep.add_argument("--seed", type=int, default=1)
    p_sweep.set_defaults(fn=_cmd_sweep)

    args = parser.parse_args(argv)
    if not getattr(args, "paths", True):
        args.paths = ["src"]
    return args.fn(args)


def verify_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-verify`` console script."""
    if argv is None:
        argv = sys.argv[1:]
    return main(["verify", *argv])


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
