"""Gauss–Seidel heat-equation benchmark (paper §VI-A).

A 2-D grid is distributed across ranks as contiguous row bands; each rank
logically divides its band into blocks. Per timestep, ranks exchange
boundary rows with their upper/lower neighbours; the in-place update order
creates a wavefront pipeline across ranks and timesteps.

Run through :func:`repro.apps.gauss_seidel.runner.run_gauss_seidel`.
"""

from repro.apps.gauss_seidel.common import GSParams, gs_sweep_block, gs_reference
from repro.apps.gauss_seidel.runner import run_gauss_seidel

__all__ = ["GSParams", "gs_sweep_block", "gs_reference", "run_gauss_seidel"]
