"""Unit tests for the DES kernel: engine, events, processes."""

import pytest

from repro.sim import Engine, SimulationError, Interrupt, Mutex
from repro.sim.engine import PRIORITY_URGENT
from repro.sim.events import Event, Timeout, AllOf, AnyOf


class TestEngineBasics:
    def test_starts_at_time_zero(self):
        assert Engine().now == 0.0

    def test_timeout_advances_time(self):
        eng = Engine()
        eng.timeout(2.5)
        assert eng.run() == 2.5

    def test_run_until_caps_time(self):
        eng = Engine()
        eng.timeout(10.0)
        assert eng.run(until=3.0) == 3.0
        assert eng.now == 3.0

    def test_run_until_beyond_last_event(self):
        eng = Engine()
        eng.timeout(1.0)
        assert eng.run(until=5.0) == 5.0

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(Event(eng), delay=-1.0)

    def test_step_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Engine().step()

    def test_event_budget(self):
        eng = Engine()

        def looper():
            while True:
                yield eng.timeout(1.0)

        eng.process(looper())
        with pytest.raises(SimulationError, match="budget"):
            eng.run(max_events=50)

    def test_same_time_events_fire_in_insertion_order(self):
        eng = Engine()
        order = []
        for i in range(5):
            ev = Event(eng)
            ev.add_callback(lambda _e, i=i: order.append(i))
            ev.succeed(delay=1.0)
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_overrides_insertion_order(self):
        eng = Engine()
        order = []
        a = Event(eng)
        a.add_callback(lambda _e: order.append("normal"))
        a.succeed(delay=1.0)
        b = Event(eng)
        b.add_callback(lambda _e: order.append("urgent"))
        b.succeed(delay=1.0, priority=PRIORITY_URGENT)
        eng.run()
        assert order == ["urgent", "normal"]

    def test_event_count_increments(self):
        eng = Engine()
        eng.timeout(1.0)
        eng.timeout(2.0)
        eng.run()
        assert eng.event_count == 2


class TestEvents:
    def test_value_before_trigger_raises(self):
        eng = Engine()
        ev = Event(eng)
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_trigger_rejected(self):
        eng = Engine()
        ev = Event(eng)
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_callback_after_trigger_runs_immediately(self):
        eng = Engine()
        ev = Event(eng)
        ev.succeed("v")
        eng.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]

    def test_fail_requires_exception(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            Event(eng).fail("not an exception")  # type: ignore[arg-type]

    def test_unwaited_failure_surfaces(self):
        eng = Engine()
        Event(eng).fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            eng.run()

    def test_allof_collects_values_in_child_order(self):
        eng = Engine()
        evs = [eng.timeout(3.0, "a"), eng.timeout(1.0, "b")]
        cond = AllOf(eng, evs)
        eng.run()
        assert cond.value == ["a", "b"]
        assert eng.now == 3.0

    def test_anyof_first_value(self):
        eng = Engine()
        cond = AnyOf(eng, [eng.timeout(3.0, "slow"), eng.timeout(1.0, "fast")])
        eng.run(until=1.5)
        assert cond.triggered and cond.value == "fast"

    def test_allof_empty_fires_immediately(self):
        eng = Engine()
        cond = AllOf(eng, [])
        eng.run()
        assert cond.triggered and cond.value == []

    def test_anyof_empty_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            AnyOf(eng, [])

    def test_allof_with_already_triggered_children(self):
        eng = Engine()
        done = eng.timeout(0.0, "x")
        eng.run()
        cond = AllOf(eng, [done, eng.timeout(1.0, "y")])
        eng.run()
        assert cond.value == ["x", "y"]


class TestProcesses:
    def test_return_value(self):
        eng = Engine()

        def body():
            yield eng.timeout(1.0)
            return 42

        assert eng.run_until_complete(eng.process(body())) == 42

    def test_timeout_value_passed_to_send(self):
        eng = Engine()
        got = []

        def body():
            v = yield eng.timeout(1.0, "payload")
            got.append(v)

        eng.run_until_complete(eng.process(body()))
        assert got == ["payload"]

    def test_process_joins_process(self):
        eng = Engine()

        def inner():
            yield eng.timeout(2.0)
            return "inner-result"

        def outer():
            v = yield eng.process(inner())
            return v

        assert eng.run_until_complete(eng.process(outer())) == "inner-result"

    def test_exception_propagates(self):
        eng = Engine()

        def body():
            yield eng.timeout(1.0)
            raise RuntimeError("model bug")

        with pytest.raises(RuntimeError, match="model bug"):
            eng.run_until_complete(eng.process(body()))

    def test_failed_event_thrown_into_process(self):
        eng = Engine()
        caught = []

        def body():
            ev = Event(eng)
            ev.fail(ValueError("net down"))
            try:
                yield ev
            except ValueError as e:
                caught.append(str(e))

        eng.run_until_complete(eng.process(body()))
        assert caught == ["net down"]

    def test_yielding_non_event_fails(self):
        eng = Engine()

        def body():
            yield 123

        with pytest.raises(SimulationError, match="must yield Events"):
            eng.run_until_complete(eng.process(body()))

    def test_non_generator_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError, match="generator"):
            eng.process(lambda: None)  # type: ignore[arg-type]

    def test_interrupt(self):
        eng = Engine()
        log = []

        def sleeper():
            try:
                yield eng.timeout(100.0)
            except Interrupt as i:
                log.append(("interrupted", i.cause, eng.now))

        p = eng.process(sleeper())

        def killer():
            yield eng.timeout(5.0)
            p.interrupt("enough")

        eng.process(killer())
        eng.run()
        assert log == [("interrupted", "enough", 5.0)]

    def test_deadlock_detected(self):
        eng = Engine()

        def stuck():
            yield Event(eng)  # never triggered

        with pytest.raises(SimulationError, match="deadlock"):
            eng.run_until_complete(eng.process(stuck()))

    def test_waiting_on_self_fails(self):
        eng = Engine()
        holder = {}

        def body():
            yield holder["proc"]

        holder["proc"] = eng.process(body())
        with pytest.raises(SimulationError, match="waited on itself"):
            eng.run_until_complete(holder["proc"])


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            eng = Engine()
            trace = []

            def worker(name, m):
                yield m.acquire()
                trace.append((eng.now, name))
                yield eng.timeout(0.5)
                m.release()

            m = Mutex(eng)
            for n in ("a", "b", "c"):
                eng.process(worker(n, m))
            eng.run()
            return trace

        assert run_once() == run_once()


class TestScheduleValidation:
    @pytest.mark.parametrize("delay", [float("nan"), float("inf"), -0.5])
    def test_non_finite_or_negative_delay_rejected(self, delay):
        eng = Engine()
        with pytest.raises(SimulationError, match="delay"):
            eng.schedule(Event(eng), delay=delay)

    @pytest.mark.parametrize("delay", [float("nan"), float("inf")])
    def test_succeed_rejects_non_finite_delay(self, delay):
        eng = Engine()
        with pytest.raises(SimulationError):
            Event(eng).succeed(delay=delay)
        assert eng.queue_depth == 0


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        eng = Engine()
        fired = []
        ev = eng.timeout(1.0)
        ev.add_callback(lambda e: fired.append(e))
        assert ev.cancel() is True
        eng.timeout(2.0)
        eng.run()
        assert fired == []
        assert not ev.triggered
        assert eng.now == 2.0
        assert eng.event_count == 1  # cancelled events are not counted

    def test_cancel_after_fire_returns_false(self):
        eng = Engine()
        ev = eng.timeout(1.0)
        eng.run()
        assert ev.cancel() is False

    def test_double_cancel_returns_false(self):
        eng = Engine()
        ev = eng.timeout(1.0)
        assert ev.cancel() is True
        assert ev.cancel() is False
        assert eng.queue_depth == 0

    def test_cancel_unscheduled_raises(self):
        eng = Engine()
        with pytest.raises(SimulationError, match="unscheduled"):
            Event(eng).cancel()

    def test_queue_depth_and_peek_exclude_corpses(self):
        eng = Engine()
        evs = [eng.timeout(t) for t in (1.0, 2.0, 3.0)]
        assert eng.queue_depth == 3
        evs[0].cancel()
        assert eng.queue_depth == 2
        assert eng.peek() == 2.0  # corpse at t=1.0 is invisible
        evs[1].cancel()
        evs[2].cancel()
        assert eng.queue_depth == 0
        assert eng.peek() == float("inf")

    def test_run_on_fully_cancelled_queue_is_noop(self):
        eng = Engine()
        eng.timeout(1.0).cancel()
        assert eng.run() == 0.0
        assert eng.event_count == 0

    def test_budget_error_reports_live_depth_only(self):
        eng = Engine()
        for t in (1.0, 2.0, 3.0):
            eng.timeout(t)
        eng.timeout(4.0).cancel()
        with pytest.raises(SimulationError, match="2 queued-but-unfired"):
            eng.run(max_events=1)

    def test_cancel_immediate_event(self):
        eng = Engine()
        fired = []
        keep = Event(eng)
        keep.add_callback(lambda e: fired.append("keep"))
        gone = Event(eng)
        gone.add_callback(lambda e: fired.append("gone"))
        gone.succeed()
        keep.succeed()
        gone.cancel()
        eng.run()
        assert fired == ["keep"]

    def test_cancelled_timeout_with_budget_guard(self):
        """Cancelled corpses do not consume the max_events budget."""
        eng = Engine()
        for t in (1.0, 2.0):
            eng.timeout(t).cancel()
        eng.timeout(3.0)
        assert eng.run(max_events=1) == 3.0


class TestImmediateLane:
    """delay==0 normal-priority events take the FIFO lane; ordering must be
    indistinguishable from a single queue."""

    def test_urgent_beats_lane_at_same_instant(self):
        eng = Engine()
        order = []
        a = Event(eng)
        a.add_callback(lambda e: order.append("lane"))
        a.succeed()  # lane, seq 1
        b = Event(eng)
        b.add_callback(lambda e: order.append("urgent"))
        b.succeed(priority=PRIORITY_URGENT)  # heap, seq 2 but prio -1
        eng.run()
        assert order == ["urgent", "lane"]

    def test_lane_interleaves_with_heap_by_seq(self):
        eng = Engine()
        order = []
        for i, (delay, prio) in enumerate([(0.0, 0), (0.0, 1), (0.0, 0)]):
            ev = Event(eng)
            ev.add_callback(lambda e, i=i: order.append(i))
            ev.succeed(delay=delay, priority=prio)
        eng.run()
        # (0,prio0,seq1), (0,prio0,seq3) then (0,prio1,seq2)
        assert order == [0, 2, 1]

    def test_until_pauses_and_resumes_across_lanes(self):
        eng = Engine()
        order = []
        def tick(delay, label):
            ev = Event(eng)
            ev.add_callback(lambda e: order.append(label))
            ev.succeed(delay=delay)
        tick(1.0, "t1")
        tick(2.0, "t2")
        assert eng.run(until=1.5) == 1.5
        tick(0.0, "imm")  # lane entry at t=1.5 while heap holds t=2.0
        assert eng.run() == 2.0
        assert order == ["t1", "imm", "t2"]

    def test_max_events_budget_spans_both_lanes(self):
        eng = Engine()
        Event(eng).succeed()           # lane
        eng.timeout(1.0)               # heap
        with pytest.raises(SimulationError, match="budget"):
            eng.run(max_events=1)
        assert eng.event_count == 1
        eng.run()
        assert eng.event_count == 2


class TestScheduleBatch:
    """Bulk insertion must be observably identical to a schedule() loop,
    and lazy cancellation must keep queue_depth/peek O(live) accurate."""

    @staticmethod
    def _batch_events(eng, n, order, labels=None):
        evs = []
        for i in range(n):
            ev = Event(eng)
            label = labels[i] if labels else i
            ev.add_callback(lambda e, l=label: order.append(l))
            ev._scheduled = True  # the wire path marks batch events itself
            evs.append(ev)
        return evs

    def test_batch_fires_interleaved_with_heap_and_lane(self):
        eng = Engine()
        order = []
        eng.timeout(1.0).add_callback(lambda e: order.append("t1"))
        eng.timeout(3.0).add_callback(lambda e: order.append("t3"))
        imm = Event(eng)
        imm.add_callback(lambda e: order.append("imm"))
        imm.succeed()  # lane entry at t=0
        evs = self._batch_events(eng, 3, order, labels=["b0.5", "b2a", "b2b"])
        eng.schedule_batch([0.5, 2.0, 2.0], evs)
        assert eng.run() == 3.0
        assert order == ["imm", "b0.5", "t1", "b2a", "b2b", "t3"]

    def test_batch_equivalent_to_schedule_loop(self):
        times = [0.0, 0.0, 1.5, 1.5, 2.0]

        def drive(use_batch):
            eng = Engine()
            order = []
            eng.timeout(1.5).add_callback(lambda e: order.append("timer"))
            evs = self._batch_events(eng, len(times), order)
            if use_batch:
                eng.schedule_batch(times, evs)
            else:
                for t, ev in zip(times, evs):
                    eng.schedule(ev, t - eng.now)
            eng.run()
            return order, eng.now, eng.event_count

        assert drive(True) == drive(False)

    def test_empty_batch_is_noop(self):
        eng = Engine()
        eng.schedule_batch([], [])
        assert eng.queue_depth == 0
        assert eng.run() == 0.0

    def test_empty_batch_keeps_qgen_on_both_engines(self):
        # regression: ObjectEngine used to bump _qgen on empty batches
        # while BatchedEngine early-returned, desyncing the generation
        # counters the differential oracle compares
        from repro.sim.engine import BatchedEngine, ObjectEngine

        for cls in (BatchedEngine, ObjectEngine):
            eng = cls()
            gen = eng._qgen
            eng.schedule_batch([], [])
            assert eng._qgen == gen, cls.__name__
            assert eng.queue_depth == 0

    def test_batch_diagnosis_matches_on_both_engines(self):
        # the indexed error text is part of the cross-engine contract —
        # shard-boundary batch bugs must read the same under either engine
        from repro.sim.engine import BatchedEngine, ObjectEngine

        texts = {}
        for cls in (BatchedEngine, ObjectEngine):
            eng = cls()
            evs = self._batch_events(eng, 3, [])
            with pytest.raises(SimulationError) as exc:
                eng.schedule_batch([1.0, 3.0, 2.0], evs)
            texts[cls.__name__] = str(exc.value)
        assert texts["BatchedEngine"] == texts["ObjectEngine"]
        assert "times[2]" in texts["BatchedEngine"]

    def test_batch_validation(self):
        eng = Engine()
        evs = self._batch_events(eng, 2, [])
        with pytest.raises(SimulationError, match="times for"):
            eng.schedule_batch([1.0], evs)
        # the diagnosis names the offending index and the violated rule
        for bad, rx in (
            ([2.0, 1.0], r"times\[1\].*decreases from times\[0\]"),
            ([-1.0, 1.0], r"times\[0\].*< now"),
            ([1.0, float("nan")], r"times\[1\].*not finite"),
            ([1.0, float("inf")], r"times\[1\].*not finite"),
        ):
            with pytest.raises(SimulationError, match=rx):
                eng.schedule_batch(bad, evs)

    def test_out_of_order_second_batch_stays_sorted(self):
        # A second batch starting before the queued tail of the first must
        # not break the total order (the batched engine reroutes it).
        eng = Engine()
        order = []
        a = self._batch_events(eng, 2, order, labels=["a5", "a6"])
        eng.schedule_batch([5.0, 6.0], a)
        b = self._batch_events(eng, 2, order, labels=["b1", "b2"])
        eng.schedule_batch([1.0, 2.0], b)
        assert eng.run() == 6.0
        assert order == ["b1", "b2", "a5", "a6"]

    def test_cancel_inside_batch(self):
        """A callback cancelling a later same-timestamp batch member must
        suppress it mid-drain, and depth/peek must exclude the corpse."""
        eng = Engine()
        order = []
        evs = self._batch_events(eng, 4, order)
        eng.schedule_batch([1.0, 1.0, 1.0, 2.0], evs)
        # first member kills the third (same timestamp, already queued)
        evs[0].add_callback(lambda e: evs[2].cancel())
        depths = []
        evs[1].add_callback(lambda e: depths.append((eng.queue_depth,
                                                     eng.peek())))
        assert eng.run() == 2.0
        assert order == [0, 1, 3]
        # observed mid-run, after the cancel: only evs[3] is live
        assert depths == [(1, 2.0)]
        assert eng.queue_depth == 0
        assert eng.event_count == 3

    def test_cancel_inside_lane_drain(self):
        """Same-instant FIFO lane: cancelling a not-yet-fired lane entry
        from a lane callback must take effect within the drain."""
        eng = Engine()
        order = []
        evs = []
        for i in range(4):
            ev = Event(eng)
            ev.add_callback(lambda e, i=i: order.append(i))
            evs.append(ev)
        for ev in evs:
            ev.succeed()
        evs[0].add_callback(lambda e: evs[2].cancel())
        eng.run()
        assert order == [0, 1, 3]
        assert eng.event_count == 3

    def test_batch_corpses_invisible_to_depth_and_peek(self):
        eng = Engine()
        evs = self._batch_events(eng, 3, [])
        eng.schedule_batch([1.0, 2.0, 3.0], evs)
        assert eng.queue_depth == 3
        evs[0].cancel()
        assert eng.queue_depth == 2
        assert eng.peek() == 2.0  # head corpse skipped
        evs[1].cancel()
        evs[2].cancel()
        assert eng.queue_depth == 0
        assert eng.peek() == float("inf")
        assert eng.run() == 0.0

    def test_fail_inside_lane_drain_surfaces(self):
        """fail() invalidates the failure-free lane drain mid-run."""
        eng = Engine()
        fired = []
        boom = Event(eng)
        first = Event(eng)
        first.add_callback(lambda e: boom.fail(RuntimeError("late")))
        first.succeed()
        tail = Event(eng)
        tail.add_callback(lambda e: fired.append("tail"))
        tail.succeed()
        with pytest.raises(RuntimeError, match="late"):
            eng.run()
        assert fired == ["tail"]  # tail (seq 2) fires before boom (seq 3)
