"""Scalasca-style wait-state classification per rank.

Four wait-state classes, measured in seconds per rank:

* ``late_sender`` — a receive was posted (or a blocking wait entered)
  before the matching message was even injected at the sender; the
  classic MPI inefficiency pattern (Scalasca's Late Sender).
* ``late_notification`` — the one-sided analogue: ``notify_iwait``
  registered before the notification landed in the segment, so the task
  graph stalled on the producer (paper §IV-B acks / halo notifications).
* ``lock_wait`` — time serialized on the MPI global lock or a GASPI queue
  device (the §VI-C contention the paper measures with VTune).
* ``poll_detection`` — completion happened but the polling task detected
  it late (the poll-period quantization of §V-B).

The per-rank *dominant* state is the class with the largest total; ranks
with no measurable wait report ``none``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.perf.model import PerfModel

WAIT_STATES = ("late_sender", "late_notification", "lock_wait",
               "poll_detection")


@dataclass
class RankWaits:
    rank: object
    late_sender: float = 0.0
    late_notification: float = 0.0
    lock_wait: float = 0.0
    poll_detection: float = 0.0

    def total(self) -> float:
        return (self.late_sender + self.late_notification + self.lock_wait
                + self.poll_detection)

    def dominant(self) -> str:
        pairs = [(getattr(self, w), w) for w in WAIT_STATES]
        best = max(pairs, key=lambda p: (p[0], p[1]))
        return best[1] if best[0] > 0.0 else "none"

    def as_dict(self) -> Dict[str, float]:
        return {w: getattr(self, w) for w in WAIT_STATES}


def classify_waits(model: PerfModel) -> List[RankWaits]:
    """Compute per-rank wait-state totals, sorted by rank."""
    out: Dict[object, RankWaits] = {}

    def rw(rank: object) -> RankWaits:
        w = out.get(rank)
        if w is None:
            w = out[rank] = RankWaits(rank)
        return w

    for rank in model.sorted_ranks():
        rv = model.ranks[rank]
        w = rw(rank)
        # -- late sender: blocking waits and TAMPI pending recvs that
        # started before the matching message was injected
        for rec in rv.blocked + rv.iwaits:
            if rec.args.get("kind") != "recv":
                continue
            sent_at = rec.args.get("sent_at")
            if sent_at is not None and sent_at > rec.t0:
                w.late_sender += min(sent_at, rec.t1) - rec.t0
        # -- lock wait: MPI global-lock and GASPI queue-device waits
        for rec in rv.mpi_calls:
            w.lock_wait += rec.args.get("wait", 0.0)
        for rec in rv.iwaits:
            w.lock_wait += rec.args.get("lock_wait", 0.0)
        for rec in rv.gaspi_submits:
            w.lock_wait += rec.args.get("wait", 0.0)
        # -- notifications: registered-before-arrival is a late
        # notification; arrival-before-detection is polling delay
        for nw in rv.notify_waits:
            if nw.immediate:
                continue
            if nw.arrival_at is not None:
                if nw.arrival_at > nw.registered_at:
                    w.late_notification += (min(nw.arrival_at, nw.fulfilled_at)
                                            - nw.registered_at)
                detect = nw.fulfilled_at - max(nw.arrival_at, nw.registered_at)
                if detect > 0.0:
                    w.poll_detection += detect
            else:
                # no arrival record: count the whole pending window as
                # notification wait (conservative)
                w.late_notification += max(
                    0.0, nw.fulfilled_at - nw.registered_at)
        # -- poller detection delay on RMA request completion
        for rec in rv.detects:
            w.poll_detection += rec.t1 - rec.t0

    return [out[r] for r in sorted(out, key=lambda r:
                                   (not isinstance(r, int), str(r)))]


def dominant_wait(waits: List[RankWaits]) -> str:
    """The dominant wait state across the whole run."""
    totals = {ws: 0.0 for ws in WAIT_STATES}
    for w in waits:
        for ws in WAIT_STATES:
            totals[ws] += getattr(w, ws)
    best = max(totals.items(), key=lambda kv: (kv[1], kv[0]))
    return best[0] if best[1] > 0.0 else "none"
