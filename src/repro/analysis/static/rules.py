"""Protocol rules over per-function CFGs — each the static twin of a
dynamic checker in :mod:`repro.analysis`.

A rule inspects one :class:`~repro.analysis.static.verify.FunctionInfo`
and yields raw findings. Register new rules with
:func:`register_rule`; ``verify`` runs every registered rule.

The four shipped rules and their runtime counterparts:

===================  ==================================================
rule                 dynamic twin
===================  ==================================================
unwaited-request     finalize resource lint ``unfreed-mpi-request``
blocking-in-task     task completes without blocking (generator
                     silently discarded) → stale data / wr-race
notification-slot    ``check=strict`` ``lost-notification`` /
-reuse               ``lost-update`` findings
unpaired-epoch       ``Window.fence(MPI_MODE_NOPRECEDE)`` raising
                     ``MPIError`` on outstanding RMA
===================  ==================================================

All rules are may-path analyses: they flag when *some* CFG path exhibits
the violation. They are deliberately conservative about what counts as a
discharge — any read of a handle name (including closure capture and
container escape) counts as a use, and notification posts with
non-constant slot ids are skipped — so the shipped tree verifies clean
without drowning real bugs in noise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.static.cfg import CFG
from repro.analysis.static.dataflow import may_reach

#: raw finding: (line, col, rule, message)
RawFinding = Tuple[int, int, str, str]

RULE_UNWAITED = "unwaited-request"
RULE_BLOCKING_IN_TASK = "blocking-in-task"
RULE_SLOT_REUSE = "notification-slot-reuse"
RULE_UNPAIRED_EPOCH = "unpaired-epoch"

#: methods returning a non-blocking handle the caller must discharge
_INITIATORS = frozenset({"isend", "irecv", "isend_batch", "iget"})
#: generator-shaped blocking entry points; calling one in a plain task
#: body silently creates and discards the generator (nothing blocks)
_BLOCKING = frozenset({
    "wait", "waitall", "waitsome", "waitany", "request_wait",
    "notify_waitsome", "barrier", "taskwait", "fence",
    "flush", "flush_all", "flush_outstanding", "unlock_all",
    "run_until_complete",
})
#: receivers whose calls are task-aware (bind pending events to the
#: calling task; the runtime waits them) — exempt everywhere
_TASK_AWARE = frozenset({"tampi", "tagaspi"})
#: notification-posting methods and the positional index of their
#: ``notif_id`` / ``dest`` / ``remote_seg`` arguments
_NOTIF_POSTS = {"write_notify": (6, 2, 3), "notify": (2, 0, 1)}
#: methods that consume (or globally quiesce) notification slots
_NOTIF_CONSUMERS = frozenset({
    "notify_waitsome", "notify_iwait", "notify_test", "notify_reset",
    "_wait_notify", "barrier", "_barrier", "ec_fence",
})
#: methods closing a passive (lock_all) epoch
_LOCK_CLOSERS = frozenset({"unlock_all"})
#: methods closing an active (fence) epoch
_FENCE_CLOSERS = frozenset({"fence", "unlock_all", "close", "_close"})


RULES: Dict[str, "Rule"] = {}


def register_rule(cls):
    """Class decorator adding a rule to the global registry."""
    RULES[cls.name] = cls()
    return cls


class Rule:
    """Base class: subclass, set ``name``, implement :meth:`run`."""

    name = ""
    description = ""

    def run(self, fn) -> Iterator[RawFinding]:  # pragma: no cover
        raise NotImplementedError


# ----------------------------------------------------------------------
# call-shape helpers
# ----------------------------------------------------------------------
def call_method(call: ast.Call) -> str:
    """Method name of a call (``a.b.c(...)`` → ``"c"``, ``f()`` → ``"f"``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def receiver_parts(call: ast.Call) -> Tuple[str, ...]:
    """Dotted receiver chain of a method call (``self.mpi.isend(...)`` →
    ``("self", "mpi")``); empty for plain-name calls or computed bases."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return ()
    parts: List[str] = []
    node = func.value
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return tuple(parts)


def _unwrap_effect(expr: ast.expr) -> ast.expr:
    """Strip ``yield from`` / ``await`` wrappers: the result of the inner
    call is what the wrapper evaluates to."""
    while isinstance(expr, (ast.YieldFrom, ast.Await)):
        expr = expr.value
    return expr


def _stmt_exprs(stmt: ast.AST) -> List[ast.AST]:
    """Expression roots a CFG node *itself* evaluates.

    A compound statement's node carries only its header (an ``if`` node
    its test, a ``with`` node its context expressions) — the body
    statements are separate CFG nodes, so walking the whole subtree here
    would double-count every call. Nested defs contribute only their
    decorators and default expressions.
    """
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        roots: List[ast.AST] = list(stmt.decorator_list)
        args = getattr(stmt, "args", None)
        if args is not None:
            roots += args.defaults
            roots += [d for d in args.kw_defaults if d is not None]
        if isinstance(stmt, ast.ClassDef):
            roots += stmt.bases + [kw.value for kw in stmt.keywords]
        return roots
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, getattr(ast, "Match", ())):
        return [stmt.subject]
    return [stmt]


def _iter_calls(stmt: ast.AST) -> Iterator[ast.Call]:
    """Every call a CFG node itself evaluates (see :func:`_stmt_exprs`).

    Nested function/class/lambda bodies are excluded: a nested def is
    analysed as its own function, and a lambda body runs later, not at
    this node.
    """
    skip_bodies = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
    stack: List[ast.AST] = _stmt_exprs(stmt)
    while stack:
        node = stack.pop()
        if isinstance(node, skip_bodies):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _arg(call: ast.Call, keyword: str, pos: int) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if pos < len(call.args) and not any(
            isinstance(a, ast.Starred) for a in call.args[:pos + 1]):
        return call.args[pos]
    return None


def _is_task_aware(parts: Tuple[str, ...]) -> bool:
    return any(p in _TASK_AWARE for p in parts)


# ----------------------------------------------------------------------
# rule 1: unwaited-request
# ----------------------------------------------------------------------
@register_rule
class UnwaitedRequest(Rule):
    """A non-blocking handle may reach function exit (or be overwritten)
    without any use on some path.

    Any read of the handle name discharges it: an explicit
    ``wait``/``test``, an ``append`` into a list that is waited later, a
    closure capture, a return. The dynamic twin is the finalize resource
    lint's ``unfreed-mpi-request`` warning.
    """

    name = RULE_UNWAITED
    description = ("non-blocking handle (isend/irecv/iget) dropped on "
                   "some path before any wait/test/use")

    def run(self, fn) -> Iterator[RawFinding]:
        cfg: CFG = fn.cfg
        for node in cfg.nodes:
            stmt = node.stmt
            target: Optional[str] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                target, value = stmt.targets[0].id, stmt.value
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.value is not None:
                target, value = stmt.target.id, stmt.value
            elif isinstance(stmt, ast.Expr):
                value = stmt.value
                if isinstance(value, (ast.Yield,)):
                    continue  # `yield call()` hands the result to a waiter
            else:
                continue
            call = _unwrap_effect(value) if value is not None else None
            if not isinstance(call, ast.Call):
                continue
            method = call_method(call)
            if method not in _INITIATORS:
                continue
            parts = receiver_parts(call)
            if not parts or _is_task_aware(parts):
                continue
            chain = ".".join(parts)
            if target is None:
                yield (node.line, node.col, self.name,
                       f"result of {chain}.{method}() is discarded; the "
                       "handle can never be waited (dynamic twin: "
                       "unfreed-mpi-request at finalize)")
                continue
            uses = {n.index for n in cfg.nodes if target in n.uses}
            redefs = {n.index for n in cfg.nodes
                      if target in n.defs and target not in n.uses}
            targets = redefs | {CFG.EXIT}
            if may_reach(cfg, cfg.successors(node.index), targets, uses):
                yield (node.line, node.col, self.name,
                       f"handle '{target}' from {chain}.{method}() may "
                       "reach function exit or be overwritten without a "
                       "wait/test/use on some path (dynamic twin: "
                       "unfreed-mpi-request at finalize)")


# ----------------------------------------------------------------------
# rule 2: blocking-in-task
# ----------------------------------------------------------------------
@register_rule
class BlockingInTask(Rule):
    """A blocking MPI/GASPI call lexically inside a task body.

    The paper's core rule: blocking inside a task stalls (or, in this
    simulator, silently no-ops — the blocking entry points are
    generators, so a plain task body creates and discards one) the
    worker; use the TAMPI/TAGASPI task-aware wrappers instead.
    """

    name = RULE_BLOCKING_IN_TASK
    description = ("blocking MPI/GASPI call inside a task body without "
                   "the TAMPI/TAGASPI wrapper")

    def run(self, fn) -> Iterator[RawFinding]:
        if not fn.is_task_body:
            return
        for node in fn.cfg.nodes:
            for call in _iter_calls(node.stmt):
                method = call_method(call)
                if method not in _BLOCKING:
                    continue
                parts = receiver_parts(call)
                if not parts or _is_task_aware(parts) or parts[-1] == "task":
                    continue
                chain = ".".join(parts)
                yield (call.lineno, call.col_offset, self.name,
                       f"blocking {chain}.{method}() inside task body "
                       f"'{fn.qualname}': the call is generator-shaped, "
                       "so a plain task body silently discards it — use "
                       "the TAMPI/TAGASPI task-aware wrapper (paper "
                       "§III/§V discipline)")


# ----------------------------------------------------------------------
# rule 3: notification-slot-reuse
# ----------------------------------------------------------------------
@register_rule
class NotificationSlotReuse(Rule):
    """The same constant notification id posted twice with no consuming
    call on some path in between.

    GASPI notification slots are single-value mailboxes: a second
    ``write_notify``/``notify`` to the same ``(receiver, dest, segment,
    id)`` before the first is consumed overwrites the value — the
    dynamic race detector reports it as ``lost-notification`` /
    ``lost-update`` under ``check=strict``. Posts whose id is not a
    literal constant are skipped (loop-indexed slots are the common
    correct idiom and need the dynamic checker).
    """

    name = RULE_SLOT_REUSE
    description = ("constant notification id re-posted with no "
                   "notify_waitsome/consume on a path in between")

    def run(self, fn) -> Iterator[RawFinding]:
        cfg: CFG = fn.cfg
        posts: Dict[Tuple[str, str, str, object],
                    List[Tuple[int, ast.Call]]] = {}
        consumers: Set[int] = set()
        for node in cfg.nodes:
            for call in _iter_calls(node.stmt):
                method = call_method(call)
                if method in _NOTIF_CONSUMERS:
                    consumers.add(node.index)
                    continue
                if method not in _NOTIF_POSTS:
                    continue
                id_pos, dest_pos, seg_pos = _NOTIF_POSTS[method]
                nid = _arg(call, "notif_id", id_pos)
                if not isinstance(nid, ast.Constant):
                    continue
                dest = _arg(call, "dest", dest_pos)
                seg = _arg(call, "remote_seg", seg_pos)
                key = (".".join(receiver_parts(call)),
                       ast.unparse(dest) if dest is not None else "",
                       ast.unparse(seg) if seg is not None else "",
                       nid.value)
                posts.setdefault(key, []).append((node.index, call))
        flagged: Set[Tuple[int, int]] = set()
        for key, sites in posts.items():
            for a_idx, _a_call in sites:
                for b_idx, b_call in sites:
                    pos = (b_call.lineno, b_call.col_offset)
                    if pos in flagged:
                        continue
                    # a == b covers the re-post-in-a-loop cycle
                    if may_reach(cfg, cfg.successors(a_idx), {b_idx},
                                 consumers):
                        flagged.add(pos)
                        yield (b_call.lineno, b_call.col_offset, self.name,
                               f"notification id {key[3]!r} re-posted to "
                               f"segment '{key[2]}' of dest '{key[1]}' "
                               "with no consuming notify_waitsome on a "
                               "path since the previous post (dynamic "
                               "twin: lost-notification under "
                               "check=strict)")


# ----------------------------------------------------------------------
# rule 4: unpaired-epoch
# ----------------------------------------------------------------------
def _fence_opens(call: ast.Call) -> bool:
    """A fence call opening an epoch: carries MPI_MODE_NOPRECEDE."""
    for sub in ast.walk(call):
        if isinstance(sub, ast.Name) and "NOPRECEDE" in sub.id:
            return True
        if isinstance(sub, ast.Attribute) and "NOPRECEDE" in sub.attr:
            return True
    return False


@register_rule
class UnpairedEpoch(Rule):
    """An RMA epoch opened (``lock_all`` or ``fence(MPI_MODE_NOPRECEDE)``)
    with a path to function exit crossing no matching close.

    ``src/repro/mpi/rma.py`` semantics: a passive epoch closes with
    ``unlock_all``; an active exposure epoch closes with the next
    ``fence``. A helper receiver that merely *wraps* the close
    (``self._close()``) matches when its receiver chain is a prefix of
    the opener's. The dynamic twin: the next
    ``fence(MPI_MODE_NOPRECEDE)`` validates its assertion and raises
    ``MPIError`` when RMA is still outstanding.
    """

    name = RULE_UNPAIRED_EPOCH
    description = ("RMA lock_all/fence(NOPRECEDE) epoch open without a "
                   "matching close on some path")

    def run(self, fn) -> Iterator[RawFinding]:
        cfg: CFG = fn.cfg
        openings: List[Tuple[int, ast.Call, Tuple[str, ...], str]] = []
        closers: List[Tuple[int, Tuple[str, ...], str]] = []
        for node in cfg.nodes:
            for call in _iter_calls(node.stmt):
                method = call_method(call)
                parts = receiver_parts(call)
                if method == "lock_all":
                    openings.append((node.index, call, parts, "lock"))
                elif method == "fence" and _fence_opens(call):
                    openings.append((node.index, call, parts, "fence"))
                if method in _FENCE_CLOSERS or method in _LOCK_CLOSERS:
                    closers.append((node.index, parts, method))
        for o_idx, call, o_parts, kind in openings:
            wanted = _LOCK_CLOSERS if kind == "lock" else _FENCE_CLOSERS
            blocked: Set[int] = set()
            for c_idx, c_parts, c_method in closers:
                if c_method not in wanted:
                    continue
                same = c_parts == o_parts
                wrapper = (c_method in ("close", "_close")
                           and o_parts[:len(c_parts)] == c_parts)
                if same or wrapper:
                    blocked.add(c_idx)
            if may_reach(cfg, cfg.successors(o_idx), {CFG.EXIT}, blocked):
                chain = ".".join(o_parts)
                opener = ("lock_all" if kind == "lock"
                          else "fence(MPI_MODE_NOPRECEDE)")
                closer = ("unlock_all" if kind == "lock" else "fence")
                yield (call.lineno, call.col_offset, self.name,
                       f"epoch opened by {chain}.{opener} may reach "
                       f"function exit without a matching {closer} on "
                       "some path (dynamic twin: the next "
                       "fence(MPI_MODE_NOPRECEDE) raises MPIError on "
                       "outstanding RMA)")


def iter_rules() -> Iterable[Rule]:
    """Registered rules in deterministic (name) order."""
    return [RULES[name] for name in sorted(RULES)]
