"""GASPI communication queues and low-level requests.

Each queue is a FIFO channel for RMA submissions. Submission serializes on
a per-queue :class:`~repro.sim.serial.SerialDevice` (hold time =
``gaspi.op``), so concurrent tasks posting to *different* queues do not
contend at all — the multiplexing strategy the paper's sender tasks use —
and even same-queue contention is an order of magnitude cheaper than the
MPI global lock.

A :class:`LowLevelRequest` records one ibverbs-like work request: its user
tag and the absolute sim time of its local completion (when the source
buffer may be reused). ``request_wait`` (on :class:`GaspiRank`) harvests
completed requests by comparing those times against "now" — no events
needed, which keeps polling cheap in the DES.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field
from typing import List

from repro.sim.engine import Engine
from repro.sim.serial import SerialDevice

#: process-wide monotonic request serials: a stable identity for targeted
#: purge (``id()`` would do the same job only until the allocator reuses a
#: freed request's address)
_request_serials = itertools.count()


@dataclass
class LowLevelRequest:
    """One hardware-level work request created by a GASPI operation."""

    tag: int
    #: absolute sim time of local completion
    done_at: float
    #: operation kind that created it (diagnostics)
    op: str
    #: absolute sim time of submission (trace timelines)
    submitted_at: float = 0.0
    #: destination rank (recovery diagnostics / connection health)
    dest: "int | None" = None
    #: monotonic identity (never reused, unlike ``id()``)
    serial: int = field(default_factory=_request_serials.__next__)


class GaspiQueue:
    """One communication queue of one rank."""

    __slots__ = ("engine", "queue_id", "device", "inflight", "submitted",
                 "harvested", "purged")

    def __init__(self, engine: Engine, rank: int, queue_id: int):
        self.engine = engine
        self.queue_id = queue_id
        self.device = SerialDevice(engine, f"gaspi.q{queue_id}.rank{rank}")
        #: locally incomplete (or complete but unharvested) requests, FIFO
        self.inflight: List[LowLevelRequest] = []
        self.submitted = 0
        self.harvested = 0
        self.purged = 0

    def post(self, req: LowLevelRequest) -> None:
        self.inflight.append(req)
        self.submitted += 1

    def harvest(self, max_reqs: int, now: float) -> List[LowLevelRequest]:
        """Remove and return up to ``max_reqs`` requests whose local
        completion time has passed."""
        done: List[LowLevelRequest] = []
        remaining: List[LowLevelRequest] = []
        for req in self.inflight:
            if len(done) < max_reqs and req.done_at <= now:
                done.append(req)
            else:
                remaining.append(req)
        self.inflight = remaining
        self.harvested += len(done)
        return done

    def purge(self) -> List[LowLevelRequest]:
        """``gaspi_queue_purge``: abandon *all* in-flight requests without
        harvesting them; returns the abandoned requests."""
        abandoned, self.inflight = self.inflight, []
        self.purged += len(abandoned)
        return abandoned

    def remove(self, reqs: List[LowLevelRequest]) -> List[LowLevelRequest]:
        """Abandon a specific set of requests (by identity) — the targeted
        purge TAGASPI's recovery uses to re-submit one timed-out operation
        without disturbing the rest of the queue."""
        targets = {r.serial for r in reqs}
        removed = [r for r in self.inflight if r.serial in targets]
        if removed:
            self.inflight = [r for r in self.inflight if r.serial not in targets]
            self.purged += len(removed)
        return removed

    @property
    def depth(self) -> int:
        return len(self.inflight)
