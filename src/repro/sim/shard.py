"""Sharded conservative-time parallel discrete-event execution.

One simulated job is partitioned across OS worker processes ("shards"):
nodes are split into contiguous blocks, each shard builds the *full*
:class:`~repro.harness.runner.Job` (so every rank endpoint exists and
message routing is unchanged) but only spawns the main processes of the
ranks placed on its own nodes. Cross-shard traffic rides the wire records
of :mod:`repro.network.topology`: a sender whose destination node belongs
to another shard appends the timestamped record to the cluster ``outbox``
instead of the local pending heap, and the coordinator ships it to the
owner at the next barrier.

Synchronization is the classic conservative *lookahead window* protocol
(CMB null-message reduced to a barrier per window, cf. DART-MPI-style
one-sided progress engines):

* **Lookahead** ``L`` is the minimum inter-node link latency
  (``Cluster.lookahead``): a message injected at time ``u`` cannot arrive
  before ``u + L`` — egress serialization, protocol extras, and jitter
  only ever *add* to it. Intra-node traffic never crosses shards and
  never blocks the protocol.
* **LBTS** (lower bound on timestamp) each round is the minimum over
  every shard's next local event time and every just-gathered wire
  record's arrival time. Every event a shard fires in the next window is
  at ``t >= LBTS``, so any record it will *ever* produce arrives at
  ``>= LBTS + L``.
* **Window**: each shard runs ``run_window(T_end)`` with ``T_end = LBTS
  + L``, firing exactly the events strictly below ``T_end``. Records
  gathered at the barrier are merged before the next window; their
  arrival times are ``>= T_end``, so no shard ever receives a record in
  its past.

Determinism contract (see docs/sharding.md): the ingress NIC grants of
every node happen in global ``(wire_arrive, src_node, send#)`` order — a
pure function of the record set, independent of the partition — and all
float accumulations (jitter streams, transit time, MPI lock totals) are
per-node or per-rank and re-reduced in canonical order. Sharded runs are
therefore **bit-identical** to the single-engine path; the oracle tests
in tests/test_shard.py assert exactly that.

Results merge: ``sim_time`` is the max over shards of the local time at
which each shard's last rank process completed (the single-engine run
stops at exactly that event); metrics are re-reduced from per-rank /
per-node partial vectors in the same left-to-right order the serial
collectors use.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim import engine as _engine_mod
from repro.sim.engine import SimulationError

_INF = float("inf")

#: ``make_procs(job, local_ranks)`` returns the main-process events for the
#: given ranks of an assembled (full) Job. Called once inside each worker.
ProcsFactory = Callable[[object, List[int]], list]


class ShardError(SimulationError):
    """A shard worker died or reported a failure."""


# ----------------------------------------------------------------------
# eligibility & partitioning
# ----------------------------------------------------------------------
def shard_eligible(spec, tracer=None, collect_grid: bool = False) -> bool:
    """True if ``spec`` can run sharded with the bit-identity guarantee.

    Per-message observers (tracer, analysis, perf tracing, active fault
    plans) see sends in engine-execution order, which the partition does
    not preserve; hybrid variants carry tasking runtimes whose polling
    services never go idle (no finite LBTS); zero inter-node latency
    gives no lookahead. All of those fall back to the single engine.
    """
    if spec.variant != "mpi" or spec.backend is not None:
        return False
    if tracer is not None or spec.check is not None or spec.perf:
        return False
    if collect_grid:
        return False
    if spec.faults is not None and not spec.faults.empty:
        return False
    if spec.machine.fabric.base_latency(intra=False) <= 0.0:
        return False
    return True


def resolve_shards(spec, tracer=None, collect_grid: bool = False) -> int:
    """Shard count a runner should use for ``spec`` (0 = run serial).

    ``JobSpec(shards=N)`` wins; otherwise ``REPRO_ENGINE=sharded`` selects
    ``REPRO_SHARDS`` (default 2). The count is capped at ``n_nodes``
    (nodes are the partition unit).
    """
    n = getattr(spec, "shards", None)
    if n is None and _engine_mod.SHARDED_DEFAULT:
        n = _engine_mod.DEFAULT_SHARDS
    if n is None or n < 1:
        return 0
    if not shard_eligible(spec, tracer=tracer, collect_grid=collect_grid):
        return 0
    return min(n, spec.n_nodes)


def partition_nodes(n_nodes: int, n_shards: int) -> List[int]:
    """Contiguous block partition: ``owner[node_id] -> shard``."""
    if not 1 <= n_shards <= n_nodes:
        raise SimulationError(
            f"cannot split {n_nodes} nodes into {n_shards} shards")
    base, extra = divmod(n_nodes, n_shards)
    owner: List[int] = []
    for sid in range(n_shards):
        owner.extend([sid] * (base + (1 if sid < extra else 0)))
    return owner


def _rank_node(spec, rank: int) -> int:
    # mirrors Cluster.place_ranks_block
    return rank // spec.ranks_per_node


# ----------------------------------------------------------------------
# worker
# ----------------------------------------------------------------------
def _local_metrics(job) -> Dict[str, object]:
    """Partial metric vectors of one shard, for canonical re-reduction.

    Foreign ranks/nodes exist in the worker's full Job but never act, so
    their entries are exact zeros; the coordinator still selects each
    entry from its owner shard rather than summing across shards.
    """
    cluster = job.cluster
    st = cluster._stats
    out: Dict[str, object] = {
        "messages": st.messages,
        "control_messages": st.control_messages,
        "bytes": st.bytes,
        "intra_messages": st.intra_messages,
        "node_transit": [nd.transit_time for nd in cluster.nodes],
    }
    mpi = job.mpi
    if mpi is not None:
        out["rank_time_in_mpi"] = [rk.lock.time_in_mpi for rk in mpi.ranks]
        out["rank_wait_in_mpi"] = [rk.lock.wait_in_mpi for rk in mpi.ranks]
        out["mpi_calls"] = sum(rk.lock.calls for rk in mpi.ranks)
        out["mpi_isends"] = sum(rk.stats_isends for rk in mpi.ranks)
        out["mpi_irecvs"] = sum(rk.stats_irecvs for rk in mpi.ranks)
        out["eager_msgs"] = sum(rk.stats_eager for rk in mpi.ranks)
        out["rendezvous_msgs"] = sum(rk.stats_rendezvous for rk in mpi.ranks)
    return out


def _worker_main(spec, shard_id: int, owner: List[int],
                 make_procs: ProcsFactory, conn,
                 max_events: Optional[int]) -> None:
    """One shard: full Job, local procs, window loop driven over ``conn``."""
    try:
        from repro.harness.runner import build_job

        job = build_job(spec)
        cluster = job.cluster
        cluster.configure_sharding(owner, shard_id)
        eng = job.engine
        local_ranks = [
            r for r in range(spec.n_ranks)
            if owner[cluster.node_of(r)] == shard_id
        ]
        procs = make_procs(job, local_ranks)

        live = [0]
        t_done = [0.0]

        def _done(_event, live=live, t_done=t_done):
            live[0] -= 1
            if live[0] == 0:
                t_done[0] = eng.now

        for p in procs:
            if not p.triggered:
                live[0] += 1
                p.add_callback(_done)

        fired0 = eng.event_count
        while True:
            tag, payload = conn.recv()
            if tag == "window":
                t_end, records = payload
                if records:
                    cluster.inject_arrivals(records)
                budget = None
                if max_events is not None:
                    budget = max_events - (eng.event_count - fired0)
                    if budget <= 0:
                        raise eng.budget_error(max_events)
                eng.run_window(t_end, max_events=budget)
                conn.send(("state", {
                    "peek": eng.peek(),
                    "queue_depth": eng.queue_depth,
                    "now": eng.now,
                    "outbox": cluster.take_outbox(),
                    "live": live[0],
                    "t_done": t_done[0],
                    "alive": [p.name for p in procs if not p.triggered],
                }))
            elif tag == "finish":
                for p in procs:
                    if p.ok is False:
                        raise p.value
                conn.send(("result", {
                    "t_done": t_done[0],
                    "metrics": _local_metrics(job),
                }))
                conn.close()
                return
            else:  # "abort"
                conn.close()
                return
    except BaseException as exc:  # ship the failure to the coordinator
        try:
            conn.send(("error", (type(exc).__name__, str(exc),
                                 traceback.format_exc())))
            conn.close()
        except Exception:
            pass
        os._exit(1)


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
def _merge_metrics(spec, owner: List[int],
                   parts: List[Dict[str, object]]) -> Dict[str, float]:
    """Re-reduce shard partials exactly as the serial collectors would.

    Integer counters sum (exact); float totals are rebuilt from per-rank /
    per-node vectors — each entry taken from its owner shard — and summed
    left-to-right in rank/node order, reproducing ``sum(rk.lock... for rk
    in ranks)`` and the node-ordered transit property bit for bit. The
    derived metrics replicate :meth:`Job.collect_metrics`.
    """
    n_ranks = spec.n_ranks

    messages = sum(p["messages"] for p in parts)
    m: Dict[str, float] = {
        "messages": messages,
        "control_messages": sum(p["control_messages"] for p in parts),
        "bytes": sum(p["bytes"] for p in parts),
        "intra_messages": sum(p["intra_messages"] for p in parts),
    }
    total_transit = 0.0
    for node_id in range(spec.n_nodes):
        total_transit += parts[owner[node_id]]["node_transit"][node_id]
    m["mean_transit"] = total_transit / messages if messages else 0.0

    if "rank_time_in_mpi" in parts[0]:
        time_in_mpi = sum(
            parts[owner[_rank_node(spec, r)]]["rank_time_in_mpi"][r]
            for r in range(n_ranks)
        )
        wait_in_mpi = sum(
            parts[owner[_rank_node(spec, r)]]["rank_wait_in_mpi"][r]
            for r in range(n_ranks)
        )
        m["time_in_mpi"] = time_in_mpi
        m["wait_in_mpi"] = wait_in_mpi
        for key in ("mpi_calls", "mpi_isends", "mpi_irecvs", "eager_msgs",
                    "rendezvous_msgs"):
            m[key] = sum(p[key] for p in parts)

    m["comm_time"] = m.get("time_in_mpi", 0.0) + m.get("gaspi_submit_time", 0.0)
    m["lock_wait_time"] = m.get("wait_in_mpi", 0.0) + m.get("gaspi_queue_wait", 0.0)
    m.setdefault("messages", 0.0)
    m.setdefault("notifications", 0.0)
    m.setdefault("fault_injected", 0.0)
    m.setdefault("fault_retransmits", 0.0)
    m.setdefault("fault_timeouts", 0.0)
    return m


def run_sharded_job(spec, make_procs: ProcsFactory, n_shards: int,
                    max_events: Optional[int] = 50_000_000,
                    observer: Optional[Callable] = None,
                    ) -> Tuple[float, Dict[str, float]]:
    """Run one job across ``n_shards`` forked workers.

    ``make_procs(job, local_ranks)`` builds the rank main processes inside
    each worker (it is inherited through fork, so closures are fine).
    ``observer(round_idx, t_end, states)``, when given, is called at every
    barrier with the per-shard ``{"peek", "queue_depth", "now", "live",
    ...}`` dicts — the shard-boundary observation hook the determinism
    tests log. Returns ``(sim_time, metrics)``.

    ``max_events`` bounds each *shard's* fired events (the serial budget
    cannot be enforced globally without serializing the shards).
    """
    if n_shards < 1:
        raise SimulationError("n_shards must be >= 1")
    lookahead = spec.machine.fabric.base_latency(intra=False)
    if lookahead <= 0.0:
        raise SimulationError("cannot shard: no inter-node lookahead")
    owner = partition_nodes(spec.n_nodes, n_shards)

    ctx = multiprocessing.get_context("fork")
    pipes = []
    workers = []
    for sid in range(n_shards):
        parent_conn, child_conn = ctx.Pipe()
        w = ctx.Process(
            target=_worker_main,
            args=(spec, sid, owner, make_procs, child_conn, max_events),
            daemon=True,
        )
        w.start()
        child_conn.close()
        pipes.append(parent_conn)
        workers.append(w)

    def _recv(pc, sid):
        try:
            tag, payload = pc.recv()
        except EOFError:
            raise ShardError(f"shard {sid} died without reporting") from None
        if tag == "error":
            name, text, tb = payload
            raise ShardError(
                f"shard {sid} failed: {name}: {text}\n{tb}")
        return tag, payload

    try:
        inboxes: List[list] = [[] for _ in range(n_shards)]
        t_end = 0.0
        round_idx = 0
        states: List[dict] = []
        while True:
            for sid, pc in enumerate(pipes):
                pc.send(("window", (t_end, inboxes[sid])))
            inboxes = [[] for _ in range(n_shards)]
            states = []
            for sid, pc in enumerate(pipes):
                tag, payload = _recv(pc, sid)
                states.append(payload)

            lbts = min(s["peek"] for s in states)
            for s in states:
                for rec in s["outbox"]:
                    dst_node = _rank_node(spec, rec[4].dst_rank)
                    inboxes[owner[dst_node]].append(rec)
                    if rec[0] < lbts:
                        lbts = rec[0]
            if observer is not None:
                observer(round_idx, t_end, states)
            round_idx += 1

            if sum(s["live"] for s in states) == 0:
                break
            if lbts == _INF:
                alive = [n for s in states for n in s["alive"]]
                raise SimulationError(
                    f"job deadlocked; still alive: {alive}")
            t_end = lbts + lookahead

        for pc in pipes:
            pc.send(("finish", None))
        results = []
        for sid, pc in enumerate(pipes):
            tag, payload = _recv(pc, sid)
            results.append(payload)
        for w in workers:
            w.join(timeout=60)

        sim_time = max(r["t_done"] for r in results)
        metrics = _merge_metrics(spec, owner,
                                 [r["metrics"] for r in results])
        return sim_time, metrics
    finally:
        for pc in pipes:
            try:
                pc.close()
            except Exception:
                pass
        for w in workers:
            if w.is_alive():
                w.terminate()
            w.join(timeout=10)
