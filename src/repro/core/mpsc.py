"""Multiple-producer single-consumer hand-off queue (paper §IV-D).

In the real TAGASPI, communication tasks push pending-notification objects
onto a lock-free MPSC queue; the polling task drains it into a Boost
intrusive list so producer contention never touches the poller's working
set (the technique of Álvarez et al., PPoPP'21 [17]).

The DES is single-threaded, so correctness needs no atomics — what we keep
is the *cost model*: a constant per-push CPU charge for the producer's CAS
and a per-drain charge for the consumer's exchange, both far below any
lock-based alternative. Statistics let tests assert the drain-in-batches
behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.sim.context import charge_current
from repro.sim.engine import Engine

#: producer-side CAS cost
PUSH_COST = 0.02e-6
#: consumer-side pointer-exchange cost per drain call
DRAIN_COST = 0.05e-6


class MPSCQueue:
    """Lock-free MPSC queue cost model."""

    __slots__ = ("engine", "_items", "pushes", "drains")

    def __init__(self, engine: Engine):
        self.engine = engine
        self._items: Deque[object] = deque()
        self.pushes = 0
        self.drains = 0

    def push(self, item: object) -> None:
        """Producer side: called by communication tasks."""
        charge_current(self.engine, PUSH_COST)
        self._items.append(item)
        self.pushes += 1

    def drain(self) -> List[object]:
        """Consumer side: called by the polling task; empties the queue."""
        charge_current(self.engine, DRAIN_COST)
        self.drains += 1
        items = list(self._items)
        self._items.clear()
        return items

    def __len__(self) -> int:
        return len(self._items)
