"""The per-layer counter registry.

Every substrate keeps its own counters (``NetworkStats``, ``LockStats``,
``GlobalLock.time_in_mpi``, TAMPI's ``stats_*``, GASPI queue/segment
counters, ``RuntimeStats``). A :class:`MetricsRegistry` holds one collector
callable per layer and sweeps them all into a single flat ``{name: float}``
dict after a job completes — the harness attaches that sweep to
``VariantResult.extra`` so benchmarks report time-in-MPI, lock-wait
fraction, message/notification counts, … alongside throughput.

Collectors returning the same key are **summed** (the natural semantic for
per-rank collectors registered once per rank).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

Collector = Callable[[], Dict[str, float]]


class MetricsRegistry:
    """Named collectors swept into one flat metrics dict."""

    def __init__(self) -> None:
        self._collectors: List[Tuple[str, Collector]] = []

    def register(self, name: str, collector: Collector) -> None:
        """Add ``collector`` (a zero-arg callable returning a flat
        ``{key: number}`` dict) under a diagnostic ``name``."""
        if not callable(collector):
            raise TypeError(f"collector {name!r} is not callable")
        self._collectors.append((name, collector))

    def __len__(self) -> int:
        return len(self._collectors)

    @property
    def names(self) -> List[str]:
        return [n for n, _ in self._collectors]

    def collect(self) -> Dict[str, float]:
        """Sweep all collectors; duplicate keys are summed."""
        out: Dict[str, float] = {}
        for name, collector in self._collectors:
            sample = collector()
            for key, value in sample.items():
                v = float(value)
                out[key] = out.get(key, 0.0) + v if key in out else v
        return out
