"""Integration tests: Gauss–Seidel variants vs the sequential reference."""

import numpy as np
import pytest

from repro.apps.gauss_seidel import GSParams, gs_reference, run_gauss_seidel
from repro.apps.gauss_seidel.common import (
    gs_sweep_block,
    initial_grid,
    partition_rows,
)
from repro.apps.gauss_seidel.runner import run_gauss_seidel_steady
from repro.harness import JobSpec, MARENOSTRUM4, CTE_AMD

MACH4 = MARENOSTRUM4.with_cores(4)


class TestKernel:
    def test_blocked_sweep_equals_whole_row_sweep(self):
        rng = np.random.default_rng(0)
        A1 = rng.random((8, 16))
        A2 = A1.copy()
        top, bottom = rng.random(16), rng.random(16)
        side = np.zeros(8)
        gs_sweep_block(A1, top, bottom, side, side)
        # same sweep, columns split into two blocks
        old_right = A2[:, 8].copy()
        gs_sweep_block(A2[:, :8], top[:8], bottom[:8], side, old_right)
        gs_sweep_block(A2[:, 8:], top[8:], bottom[8:], A2[:, 7], side)
        assert np.array_equal(A1, A2)

    def test_sweep_moves_heat_downward(self):
        A = np.zeros((4, 4))
        gs_sweep_block(A, np.ones(4), np.zeros(4), np.zeros(4), np.zeros(4))
        assert A[0].max() > A[3].max() > 0

    def test_partition_rows(self):
        assert partition_rows(10, 3) == [(0, 4), (4, 7), (7, 10)]
        with pytest.raises(ValueError):
            partition_rows(2, 3)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            GSParams(rows=8, cols=10, timesteps=1, block_size=3)


class TestNumericalEquivalence:
    @pytest.fixture(scope="class")
    def params(self):
        return GSParams(rows=48, cols=32, timesteps=4, block_size=8)

    @pytest.fixture(scope="class")
    def reference(self, params):
        return gs_reference(params, initial_grid(params))

    @pytest.mark.parametrize("variant", ["mpi", "tampi", "tagaspi"])
    def test_variant_matches_reference_exactly(self, params, reference, variant):
        spec = JobSpec(machine=MACH4, n_nodes=2, variant=variant, poll_period_us=50)
        res = run_gauss_seidel(spec, params, collect_grid=True)
        assert np.array_equal(res.extra["grid"], reference)

    @pytest.mark.parametrize("variant", ["tampi", "tagaspi"])
    def test_uneven_rows_and_more_ranks(self, variant):
        params = GSParams(rows=50, cols=24, timesteps=3, block_size=8)
        ref = gs_reference(params, initial_grid(params))
        spec = JobSpec(machine=MACH4, n_nodes=3, variant=variant, poll_period_us=50)
        res = run_gauss_seidel(spec, params, collect_grid=True)
        assert np.array_equal(res.extra["grid"], ref)

    def test_single_node_degenerate(self):
        params = GSParams(rows=16, cols=16, timesteps=2, block_size=8)
        ref = gs_reference(params, initial_grid(params))
        spec = JobSpec(machine=MACH4, n_nodes=1, variant="tagaspi", poll_period_us=50)
        res = run_gauss_seidel(spec, params, collect_grid=True)
        assert np.array_equal(res.extra["grid"], ref)

    def test_no_overwrite_hazard(self):
        """The reverse halo exchange transitively orders each remote write
        after the consumption of the previous one, so the TAGASPI variant
        needs no ack notifications (variants.py docstring). Many timesteps
        with a tiny grid maximize reuse pressure."""
        params = GSParams(rows=12, cols=8, timesteps=10, block_size=4)
        ref = gs_reference(params, initial_grid(params))
        spec = JobSpec(machine=MACH4, n_nodes=3, variant="tagaspi", poll_period_us=50)
        res = run_gauss_seidel(spec, params, collect_grid=True)
        assert np.array_equal(res.extra["grid"], ref)


class TestModelMode:
    def test_model_mode_runs_without_cell_data(self):
        params = GSParams(rows=256, cols=256, timesteps=3, block_size=64,
                          compute_data=False)
        spec = JobSpec(machine=MACH4, n_nodes=2, variant="tagaspi", poll_period_us=50)
        res = run_gauss_seidel(spec, params)
        assert res.throughput > 0
        assert res.sim_time > 0

    def test_collect_grid_requires_data_mode(self):
        params = GSParams(rows=64, cols=64, timesteps=2, block_size=32,
                          compute_data=False)
        spec = JobSpec(machine=MACH4, n_nodes=2, variant="mpi")
        with pytest.raises(ValueError):
            run_gauss_seidel(spec, params, collect_grid=True)

    def test_steady_state_excludes_fill(self):
        params = GSParams(rows=256, cols=512, timesteps=6, block_size=64,
                          compute_data=False)
        spec = JobSpec(machine=MACH4, n_nodes=2, variant="mpi")
        steady = run_gauss_seidel_steady(spec, params, warm_steps=3)
        full = run_gauss_seidel(spec, params)
        # steady-state throughput is at least the whole-run throughput
        # (which still pays the pipeline fill)
        assert steady.throughput >= full.throughput * 0.99

    def test_determinism(self):
        params = GSParams(rows=128, cols=128, timesteps=3, block_size=32,
                          compute_data=False)
        spec = JobSpec(machine=MACH4, n_nodes=2, variant="tampi", seed=5)
        a = run_gauss_seidel(spec, params)
        b = run_gauss_seidel(JobSpec(machine=MACH4, n_nodes=2, variant="tampi",
                                     seed=5), params)
        assert a.sim_time == b.sim_time
