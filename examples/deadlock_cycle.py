#!/usr/bin/env python
"""A circular notification wait, named by the deadlock diagnoser.

Both ranks block in ``gaspi_notify_waitsome`` for a notification the
*other* rank was supposed to send first — the one-sided analogue of the
classic head-to-head blocking-recv deadlock. The waits poll, so the
simulation never runs out of events; it runs out of *budget*. With the
analysis pipeline installed, the budget-exhaustion error carries the
wait-for diagnosis and names the cycle (``rank0 -> rank1 -> rank0``)
instead of just counting events.

    python examples/deadlock_cycle.py
"""

import numpy as np

from repro.analysis import AnalysisPipeline
from repro.gaspi import GaspiContext
from repro.network import Cluster, INFINIBAND
from repro.sim import Engine, SimulationError


def main():
    eng = Engine()
    cluster = Cluster(eng, 2, INFINIBAND)
    cluster.place_ranks_block(2, 1)
    gaspi = GaspiContext(cluster, n_queues=1)
    gaspi.rank(0).segment_register(0, np.zeros(8))
    gaspi.rank(1).segment_register(0, np.zeros(8))
    analysis = AnalysisPipeline()
    analysis.install(eng)
    analysis.attach_cluster(cluster)
    analysis.attach_gaspi(gaspi)

    def rank_main(r):
        # each rank waits for the other's notification before sending its
        # own -- neither ever arrives
        nid, _ = yield from gaspi.rank(r).notify_waitsome(0, r, 1)
        gaspi.rank(1 - r).notify(1 - r, 0, notif_id=1 - r, notif_val=1,
                                 queue=0)

    eng.process(rank_main(0))
    eng.process(rank_main(1))

    try:
        eng.run(max_events=5000)
    except SimulationError as exc:
        print(exc)
        msg = str(exc)
        assert "deadlock cycle: rank0 -> rank1 -> rank0" in msg, msg
        assert "notify_waitsome" in msg
        kinds = [f.kind for f in analysis.findings]
        assert kinds == ["deadlock-cycle"], kinds
        print("\ndiagnoser named the cycle correctly")
    else:
        raise AssertionError("deadlock was expected but the run completed")


if __name__ == "__main__":
    main()
