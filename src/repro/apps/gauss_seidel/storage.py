"""Per-rank storage for the Gauss–Seidel variants.

Two modes:

* **data mode** (tests, examples): the rank holds its full row band and the
  kernel really runs — results are bit-comparable to the sequential
  reference.
* **model mode** (large benchmark sweeps): only the boundary rows are
  materialized (they are what actually crosses the network); compute tasks
  charge the cost model and never touch cell data. This keeps memory
  proportional to ``cols``, not ``rows x cols``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.apps.gauss_seidel.common import GSParams

#: GASPI segment ids used by the TAGASPI variant
SEG_HALO_TOP = 0
SEG_HALO_BOTTOM = 1
SEG_LOCAL = 2


class RankStorage:
    """One rank's arrays and geometry."""

    def __init__(self, params: GSParams, rank: int, n_ranks: int,
                 row_range: Tuple[int, int], grid: Optional[np.ndarray]):
        self.params = params
        self.rank = rank
        self.n_ranks = n_ranks
        self.r0, self.r1 = row_range
        self.local_rows = self.r1 - self.r0
        cols = params.cols
        self.data_mode = grid is not None

        if self.data_mode:
            self.local = np.array(grid[self.r0 : self.r1], copy=True)
            self._boundary = None
        else:
            self.local = None
            # only the rows that cross the network, stacked so the whole
            # thing can be registered as one GASPI segment
            self._boundary = np.zeros(2 * cols)
            self._first_row = self._boundary[:cols]
            self._last_row = self._boundary[cols:]

        self.halo_top = np.zeros(cols)
        self.halo_bottom = np.zeros(cols)
        # fixed global boundaries
        self.top_boundary = np.full(cols, params.top_boundary)
        self.bottom_boundary = np.zeros(cols)
        if rank == 0:
            self.halo_top[:] = self.top_boundary
        if rank == n_ranks - 1:
            self.halo_bottom[:] = self.bottom_boundary
        self.side_zeros = np.zeros(max(self.local_rows, 1))

    # -- boundary-row views (message sources) ---------------------------
    def first_row(self) -> np.ndarray:
        return self.local[0] if self.data_mode else self._first_row

    def last_row(self) -> np.ndarray:
        return self.local[-1] if self.data_mode else self._last_row

    def first_row_seg(self, j0: int, width: int) -> Tuple[int, int, int]:
        """(segment, element offset, count) of first-row columns
        [j0, j0+width) for GASPI sends."""
        if self.data_mode:
            return SEG_LOCAL, j0, width
        return SEG_LOCAL, j0, width

    def last_row_seg(self, j0: int, width: int) -> Tuple[int, int, int]:
        if self.data_mode:
            return SEG_LOCAL, (self.local_rows - 1) * self.params.cols + j0, width
        return SEG_LOCAL, self.params.cols + j0, width

    def local_segment_array(self) -> np.ndarray:
        """The array registered as SEG_LOCAL (write sources)."""
        return self.local if self.data_mode else self._boundary

    @property
    def has_upper(self) -> bool:
        return self.rank > 0

    @property
    def has_lower(self) -> bool:
        return self.rank < self.n_ranks - 1
