"""Smoke tests for the perf-benchmark suite (``python -m repro.bench``).

These run the suite in ``--quick`` mode and check the *artifacts*, not the
numbers: speedups are asserted only where they are structural (algorithmic
complexity), never for wall-clock-noise-sensitive ratios.
"""

import json

import pytest

from repro.bench import bench_names, main, write_bench_json

pytestmark = pytest.mark.bench


def test_quick_suite_emits_all_artifacts(tmp_path):
    assert main(["--quick", "--outdir", str(tmp_path)]) == 0
    for name in ("engine", "matching", "nic", "gs", "analysis", "verify"):
        path = tmp_path / f"BENCH_{name}.json"
        assert path.exists(), f"missing {path}"
        payload = json.loads(path.read_text())
        assert payload["name"] == name
        assert payload["quick"] is True
        assert payload["wall_s"] > 0
        assert payload["throughput"] > 0
        assert payload["unit"]


def test_bench_names_cover_required_artifacts():
    assert {"engine", "matching", "nic", "gs", "analysis",
            "verify"} <= set(bench_names())


def test_analysis_bench_asserts_bit_identity(tmp_path):
    """The analysis benchmark is itself a correctness check: it fails if a
    checked run diverges from the unchecked one or carries findings."""
    main(["--quick", "--only", "analysis", "--outdir", str(tmp_path)])
    payload = json.loads((tmp_path / "BENCH_analysis.json").read_text())
    assert payload["overhead_report"] > 0
    assert payload["lint_wall_s"] > 0
    assert payload["verify_wall_s"] > 0
    assert payload["sim_time_s"] > 0


def test_only_filter_runs_single_bench(tmp_path):
    assert main(["--quick", "--only", "matching",
                 "--outdir", str(tmp_path)]) == 0
    assert (tmp_path / "BENCH_matching.json").exists()
    assert not (tmp_path / "BENCH_engine.json").exists()


def test_matching_speedup_is_structural(tmp_path):
    """The indexed matcher's win over the O(n) walk is algorithmic, so even
    the quick sizes must show a clear factor."""
    main(["--quick", "--only", "matching", "--outdir", str(tmp_path)])
    payload = json.loads((tmp_path / "BENCH_matching.json").read_text())
    assert payload["speedup"] >= 2.0


def test_writer_handles_numpy_and_dataclasses(tmp_path):
    import dataclasses

    import numpy as np

    @dataclasses.dataclass
    class Point:
        x: float
        tag: str

    path = write_bench_json("scratch", {
        "scalar": np.float64(1.5),
        "array": np.arange(3),
        "point": Point(2.0, "p"),
        "nested": [{"n": np.int32(7)}],
    }, str(tmp_path))
    payload = json.loads(open(path).read())
    assert payload["scalar"] == 1.5
    assert payload["array"] == [0, 1, 2]
    assert payload["point"] == {"x": 2.0, "tag": "p"}
    assert payload["nested"] == [{"n": 7}]
