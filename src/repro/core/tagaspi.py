"""The TAGASPI library (paper §IV).

Every operation is call-shaped (returns immediately), mirrors a GASPI RMA
primitive, and binds the calling task's completion to the operation's
local finalization via the external events API — the paper's Fig. 7
implementation, with the task object itself playing the role of the opaque
event-counter pointer passed as the low-level operation tag.

The transparent polling task (§IV-D, §V-B) does two things per pass:

1. ``gaspi_request_wait`` on every queue (non-blocking) and fulfill one
   event per completed low-level request, using the request's tag to find
   the owning task;
2. drain the MPSC queue of freshly-registered pending notifications into
   the intrusive list and test each one against the segment's notification
   table, storing the notified value and fulfilling the waiter's event on
   arrival.

Calls made from an ``onready`` callback register *execution-delaying*
events instead (paper §V-A) — the mechanism behind the ack-protected
writer tasks of Fig. 8.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.mpsc import MPSCQueue
from repro.core.pool import ObjectPool, PendingNotification
from repro.faults.plan import RecoveryPolicy
from repro.faults.report import FaultAbort
from repro.gaspi.operations import (
    GASPI_OP_NOTIFY,
    GASPI_OP_READ,
    GASPI_OP_WRITE,
    GASPI_OP_WRITE_NOTIFY,
    low_level_requests,
)
from repro.gaspi.proc import GaspiRank
from repro.sim.context import charge_current
from repro.tasking.polling import PollableWork, spawn_polling_service
from repro.tasking.runtime import Runtime, TaskingError
from repro.tasking.task import Task

#: max low-level requests harvested per queue per polling pass (MAX_REQS
#: in the paper's Fig. 7)
MAX_REQS = 64

#: CPU cost of testing one pending notification in the poller
NOTIF_TEST_COST = 0.03e-6


class _TrackedOp:
    """Recovery bookkeeping for one submitted operation (recovery mode
    only): enough to purge its low-level requests and re-submit it."""

    __slots__ = ("op", "queue", "params", "task", "is_pre", "nreq",
                 "remaining", "reqs", "deadline", "retries")

    def __init__(self, op, queue, params, task, is_pre, nreq, deadline):
        self.op = op
        self.queue = queue
        self.params = params
        self.task = task
        self.is_pre = is_pre
        self.nreq = nreq
        #: low-level requests not yet harvested
        self.remaining = nreq
        self.reqs: List = []
        self.deadline = deadline
        self.retries = 0


class TAGASPI:
    """Per-rank TAGASPI instance binding a tasking runtime to a GASPI rank.

    Parameters
    ----------
    runtime:
        The rank's tasking runtime.
    gaspi_rank:
        The rank's simulated GASPI process.
    poll_period_us:
        Polling-task period in microseconds (paper §VI: 150µs for
        Gauss–Seidel / miniAMR, 50µs for Streaming).
    recovery:
        Optional :class:`repro.faults.RecoveryPolicy`. When set, every
        task-bound operation is deadline-tracked: an operation that is not
        locally complete within ``op_timeout`` is treated as a
        ``GASPI_ERR_TIMEOUT``, its low-level requests are purged, and it
        is re-submitted on the next queue (bounded retries with backoff).
        On exhaustion the policy either *releases* the task's events
        (degraded but live) or *aborts* with a structured
        :class:`~repro.faults.FaultAbort`.
    """

    def __init__(self, runtime: Runtime, gaspi_rank: GaspiRank,
                 poll_period_us: float = 150.0,
                 recovery: Optional[RecoveryPolicy] = None):
        self.runtime = runtime
        self.gaspi = gaspi_rank
        self.poll_period_us = poll_period_us
        self.recovery = recovery
        self.mpsc = MPSCQueue(runtime.engine)
        self.pool = ObjectPool(runtime.engine)
        #: the poller's working set of pending notifications (stands in for
        #: the Boost intrusive list of §IV-D)
        self._pending_notifs: List[PendingNotification] = []
        #: deadline-tracked operations (recovery mode only)
        self._tracked: List[_TrackedOp] = []
        self.work = PollableWork(runtime.engine)
        self.stats_ops = 0
        self.stats_notif_waits = 0
        self.stats_notif_immediate = 0
        self.stats_resubmits = 0
        self.stats_releases = 0
        self._poller = spawn_polling_service(
            runtime, self.poll_requests, poll_period_us, self.work,
            label="tagaspi.poll",
        )

    # ------------------------------------------------------------------
    # RMA operations (task-aware variants of the GASPI primitives)
    # ------------------------------------------------------------------
    def write_notify(self, local_seg: int, local_off: int, dest: int,
                     remote_seg: int, remote_off: int, count: int,
                     notif_id: int, notif_val: int, queue: int) -> None:
        """``tagaspi_write_notify`` (paper Figs. 3 and 7): one-sided write
        plus notification-after-data; binds two events (write + notify
        low-level requests) to the calling task."""
        self._submit(GASPI_OP_WRITE_NOTIFY, queue, local_seg=local_seg,
                     local_off=local_off, dest=dest, remote_seg=remote_seg,
                     remote_off=remote_off, count=count, notif_id=notif_id,
                     notif_val=notif_val)

    def write(self, local_seg: int, local_off: int, dest: int,
              remote_seg: int, remote_off: int, count: int, queue: int) -> None:
        """``tagaspi_write``: plain one-sided write; binds one event."""
        self._submit(GASPI_OP_WRITE, queue, local_seg=local_seg,
                     local_off=local_off, dest=dest, remote_seg=remote_seg,
                     remote_off=remote_off, count=count)

    def read(self, local_seg: int, local_off: int, dest: int,
             remote_seg: int, remote_off: int, count: int, queue: int) -> None:
        """``tagaspi_read``: one-sided read into the local segment; the
        local buffer is valid only for successor tasks (the task should
        declare an *out* dependency on it, paper §IV-A)."""
        self._submit(GASPI_OP_READ, queue, local_seg=local_seg,
                     local_off=local_off, dest=dest, remote_seg=remote_seg,
                     remote_off=remote_off, count=count)

    def notify(self, dest: int, remote_seg: int, notif_id: int,
               notif_val: int, queue: int) -> None:
        """``tagaspi_notify``: data-free remote notification — the *ack*
        of the iterative producer-consumer pattern (§IV-B); binds one
        event when called from a task, and is also callable from plain
        (non-task) context during setup."""
        self._submit(GASPI_OP_NOTIFY, queue, dest=dest, remote_seg=remote_seg,
                     notif_id=notif_id, notif_val=notif_val, required_task=False)

    def _submit(self, op: str, queue: int, required_task: bool = True, **params) -> None:
        task = self.runtime.current_task
        if task is None and required_task:
            raise TaskingError(f"tagaspi_{op} called outside a task")
        nreq = low_level_requests(op)
        rec = None
        if task is not None:
            task.add_event(nreq)
            if self.recovery is not None:
                rec = _TrackedOp(op, queue, dict(params), task,
                                 task._in_onready, nreq,
                                 self.runtime.engine.now + self.recovery.op_timeout)
                self._tracked.append(rec)
                tag = (task, task._in_onready, rec)
            else:
                tag = (task, task._in_onready)
        else:
            tag = None
        reqs = self.gaspi.operation_submit(op, tag, queue, **params)
        if rec is not None:
            rec.reqs = reqs
        if task is not None and params.get("notif_id") is not None:
            tr = self.runtime.engine.tracer
            if tr.enabled:
                # producer-side causal edge: which task posted which
                # notification (repro.perf follows it across ranks)
                tr.instant("tagaspi", "op_submit", self.runtime.engine.now,
                           rank=self.gaspi.rank, uid=task.uid, op=op,
                           dest=params.get("dest"),
                           seg=params.get("remote_seg"),
                           notif_id=params.get("notif_id"))
        self.work.notify_work(nreq)
        self.stats_ops += 1

    # ------------------------------------------------------------------
    # notification waiting
    # ------------------------------------------------------------------
    def notify_iwait(self, seg_id: int, notif_id: int,
                     out: Optional[list] = None) -> None:
        """``tagaspi_notify_iwait`` (paper Fig. 4): asynchronously wait for
        one notification. If it already arrived, consume it immediately
        (no event); otherwise bind one event and hand the pending object
        to the poller. ``out`` is an optional single-slot mutable holder
        for the notified value (the paper's pointer parameter)."""
        task = self.runtime.current_task
        if task is None:
            raise TaskingError("tagaspi_notify_iwait called outside a task")
        val = self.gaspi.notify_test(seg_id, notif_id)
        if val is not None:
            if out is not None:
                out[0] = val
            self.stats_notif_immediate += 1
            tr = self.runtime.engine.tracer
            if tr.enabled:
                tr.instant("tagaspi", "notify_immediate", self.runtime.engine.now,
                           rank=self.gaspi.rank, seg=seg_id, notif_id=notif_id,
                           uid=task.uid)
            return
        task.add_event(1)
        obj = self.pool.acquire().assign(seg_id, notif_id, out, task,
                                         task._in_onready,
                                         self.runtime.engine.now)
        self.mpsc.push(obj)
        self.work.notify_work(1)
        self.stats_notif_waits += 1

    def notify_iwaitall(self, seg_id: int, begin: int, count: int,
                        outs: Optional[Sequence[list]] = None) -> None:
        """``tagaspi_notify_iwaitall``: wait a consecutive range of
        notification ids [begin, begin+count).

        ``outs``, when given, must provide one slot per notification; a
        short sequence is rejected *before* any event is bound (failing
        midway would leave the earlier ids already registered).
        """
        if outs is not None and len(outs) < count:
            raise TaskingError(
                f"tagaspi_notify_iwaitall: outs has {len(outs)} slot(s) "
                f"for {count} notifications")
        for i in range(count):
            self.notify_iwait(seg_id, begin + i, None if outs is None else outs[i])

    # ------------------------------------------------------------------
    # polling-task body (paper Fig. 7, pollRequests)
    # ------------------------------------------------------------------
    def poll_requests(self) -> None:
        eng = self.runtime.engine
        tr = eng.tracer
        now = eng.now
        # (1) local completions per queue via the §IV-C extension
        retired = 0
        for q in range(len(self.gaspi.queues)):
            for req in self.gaspi.request_wait(q, MAX_REQS):
                if req.tag is not None:
                    # tag is (task, is_pre) or, in recovery mode,
                    # (task, is_pre, tracked_op)
                    task, is_pre = req.tag[0], req.tag[1]
                    if len(req.tag) > 2:
                        req.tag[2].remaining -= 1
                    if is_pre:
                        task.fulfill_pre_event(1)
                    else:
                        task.fulfill_event(1)
                if tr.enabled:
                    uid = req.tag[0].uid if req.tag is not None else None
                    # submit -> local completion, plus the poller's
                    # detection delay (done_at -> this pass)
                    tr.span("tagaspi", f"{req.op}.inflight",
                            req.submitted_at, req.done_at,
                            rank=self.gaspi.rank, queue=q, uid=uid)
                    if now > req.done_at:
                        tr.span("tagaspi", f"{req.op}.detect",
                                req.done_at, now, rank=self.gaspi.rank,
                                queue=q, uid=uid)
                retired += 1
        # (2) drain freshly registered pending notifications, then test all
        fresh = self.mpsc.drain()
        if fresh:
            self._pending_notifs.extend(fresh)
        if self._pending_notifs:
            charge_current(eng, NOTIF_TEST_COST * len(self._pending_notifs))
            still: List[PendingNotification] = []
            for obj in self._pending_notifs:
                val = self.gaspi.notify_test(obj.seg_id, obj.notif_id)
                if val is None:
                    still.append(obj)
                    continue
                if obj.out is not None:
                    obj.out[0] = val
                if obj.is_pre:
                    obj.task.fulfill_pre_event(1)
                else:
                    obj.task.fulfill_event(1)
                if tr.enabled:
                    tr.instant("tagaspi", "notify_fulfilled", now,
                               rank=self.gaspi.rank, seg=obj.seg_id,
                               notif_id=obj.notif_id, uid=obj.task.uid,
                               registered_at=obj.registered_at)
                self.pool.release(obj)
                retired += 1
            self._pending_notifs = still
            if tr.enabled:
                tr.counter("tagaspi", "pending_notifications", now,
                           float(len(self._pending_notifs)),
                           rank=self.gaspi.rank)
        if retired:
            self.work.retire(retired)
        if self.recovery is not None and (self._tracked or self._pending_notifs):
            self._check_recovery(eng.now)

    # ------------------------------------------------------------------
    # timeout recovery (GASPI_ERR_TIMEOUT handling, repro.faults)
    # ------------------------------------------------------------------
    def _check_recovery(self, now: float) -> None:
        """Deadline-check the tracked operations (one pass per poll).

        A timed-out operation is purged from its queue and re-submitted on
        the *next* queue (failing over the channel, as a real GASPI
        recovery path would after ``gaspi_queue_purge``), with the
        deadline stretched by the policy's backoff per retry. Partially
        completed operations are never re-submitted — their surviving
        requests are purged and the missing events released.
        """
        policy = self.recovery
        inj = self.gaspi.cluster.injector
        keep: List[_TrackedOp] = []
        for idx, rec in enumerate(self._tracked):
            if rec.remaining <= 0:
                continue  # completed since last pass
            if now < rec.deadline:
                keep.append(rec)
                continue
            self._account_timeout(rec, inj, now)
            if rec.retries < policy.max_retries and rec.remaining == rec.nreq:
                self.gaspi.purge_requests(rec.queue, rec.reqs)
                rec.retries += 1
                rec.queue = (rec.queue + 1) % len(self.gaspi.queues)
                rec.deadline = now + policy.op_timeout * (
                    policy.backoff ** rec.retries)
                tag = (rec.task, rec.is_pre, rec)
                rec.reqs = self.gaspi.operation_submit(
                    rec.op, tag, rec.queue, **rec.params)
                self.stats_resubmits += 1
                if inj is not None:
                    inj.stats.resubmits += 1
                    inj.report.record(now, "tagaspi", "resubmit",
                                      rank=self.gaspi.rank, op=rec.op,
                                      queue=rec.queue, retry=rec.retries)
                keep.append(rec)
                continue
            # exhausted (or partially completed): give up on this op
            self.gaspi.purge_requests(rec.queue, rec.reqs)
            if inj is not None:
                inj.report.record(now, "tagaspi", "exhausted",
                                  rank=self.gaspi.rank, op=rec.op,
                                  retries=rec.retries,
                                  policy=policy.on_exhaustion)
            if policy.on_exhaustion == "abort":
                # Leave the tracked list consistent for a caller that
                # catches the abort and keeps polling: already-scanned
                # records are in ``keep``; only the not-yet-scanned tail is
                # appended (re-adding the full list would duplicate the
                # kept entries and re-submit them on every later pass).
                self._tracked = keep + [r for r in self._tracked[idx + 1:]
                                        if r.remaining > 0]
                report = inj.report if inj is not None else None
                raise FaultAbort(
                    f"tagaspi rank {self.gaspi.rank}: {rec.op} gave up "
                    f"after {rec.retries} retries",
                    report=report, rank=self.gaspi.rank, op=rec.op,
                )
            # release: fulfill the task's missing events so the graph
            # drains — degraded data, but no deadlock
            if rec.is_pre:
                rec.task.fulfill_pre_event(rec.remaining)
            else:
                rec.task.fulfill_event(rec.remaining)
            self.work.retire(rec.remaining)
            rec.remaining = 0
            self.stats_releases += 1
            if inj is not None:
                inj.stats.released += 1
        self._tracked = keep
        self._check_notification_deadlines(now, policy, inj)

    def _check_notification_deadlines(self, now: float, policy, inj) -> None:
        """Deadline-check the pending notification waits.

        A notification that never arrives (the producer died, or its
        write_notify was permanently lost) has nothing the *receiver* can
        re-submit, so exhaustion semantics apply directly: release the
        waiting task's event (degraded data, graph drains) or abort."""
        expired = [o for o in self._pending_notifs
                   if now - o.registered_at > policy.op_timeout]
        if not expired:
            return
        tr = self.runtime.engine.tracer
        gone = {o.serial for o in expired}
        self._pending_notifs = [o for o in self._pending_notifs
                                if o.serial not in gone]
        if policy.on_exhaustion == "abort":
            # The expired waits are dropped *before* raising so a caller
            # that catches the abort and keeps polling does not re-abort
            # on the same stale entries; their work units are retired to
            # keep the pollable-work accounting consistent.
            obj = expired[0]
            self.work.retire(len(expired))
            for o in expired:
                self.pool.release(o)
            if inj is not None:
                inj.stats.gaspi_timeouts += len(expired)
            report = inj.report if inj is not None else None
            raise FaultAbort(
                f"tagaspi rank {self.gaspi.rank}: notification "
                f"(seg {obj.seg_id}, id {obj.notif_id}) never arrived "
                f"(> {policy.op_timeout:.6g}s)",
                report=report, rank=self.gaspi.rank, op="notify_iwait",
            )
        for obj in expired:
            if inj is not None:
                inj.stats.gaspi_timeouts += 1
                inj.stats.released += 1
                inj.report.record(now, "tagaspi", "notify_timeout",
                                  rank=self.gaspi.rank, seg=obj.seg_id,
                                  notif_id=obj.notif_id,
                                  pending_s=now - obj.registered_at)
            if tr.enabled:
                tr.instant("faults", "notify_timeout", now,
                           rank=self.gaspi.rank, seg=obj.seg_id,
                           notif_id=obj.notif_id)
            if obj.is_pre:
                obj.task.fulfill_pre_event(1)
            else:
                obj.task.fulfill_event(1)
            self.pool.release(obj)
            self.stats_releases += 1
        self.work.retire(len(expired))

    def _account_timeout(self, rec: _TrackedOp, inj, now: float) -> None:
        if inj is not None:
            inj.stats.gaspi_timeouts += 1
        tr = self.runtime.engine.tracer
        if tr.enabled:
            tr.instant("faults", "op_timeout", now, rank=self.gaspi.rank,
                       op=rec.op, queue=rec.queue, retry=rec.retries)

    @property
    def pending_notification_count(self) -> int:
        return len(self._pending_notifs) + len(self.mpsc)
