"""Unified tracing & metrics (the reproduction's Extrae/Paraver stand-in).

The paper's performance analysis (§VI) rests on timelines that attribute
time to MPI calls, GASPI notifications, lock contention, and task states.
This package provides the equivalent evidence for the simulated stack:

* :class:`Tracer` — typed span/instant/counter records collected from every
  instrumented layer (``sim``, ``net``, ``mpi``, ``gaspi``/``tagaspi``/
  ``tampi``, ``tasking``). A process-wide :data:`NULL_TRACER` keeps the
  disabled path zero-cost: every instrumentation site is guarded by a
  single ``tracer.enabled`` attribute check and records nothing.
* :mod:`repro.trace.exporters` — Chrome ``chrome://tracing`` / Perfetto
  JSON export plus a plain-text per-rank timeline.
* :class:`MetricsRegistry` — sweeps per-layer counters (time-in-MPI, lock
  wait, message/notification counts, …) into one flat dict; the harness
  attaches the sweep to every :class:`~repro.harness.metrics.VariantResult`.
* ``python -m repro.trace.view trace.json`` — CLI summary of an exported
  trace (top categories/names by total time).
"""

from repro.trace.tracer import NULL_TRACER, TraceRecord, Tracer
from repro.trace.registry import MetricsRegistry
from repro.trace.exporters import (
    chrome_trace,
    load_chrome_trace,
    text_timeline,
    write_chrome_trace,
)

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "TraceRecord",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "text_timeline",
]
