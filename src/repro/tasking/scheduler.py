"""Worker cores and the ready queue.

Each runtime owns ``n_cores`` :class:`Worker` processes. A worker pulls a
task and *drives* it: plain-callable bodies run in one synchronous step;
generator bodies are stepped, with three kinds of yieldable:

* a sim :class:`~repro.sim.events.Event` — blocking call (e.g. ``MPI_Wait``
  in a fork-join region): the core stays busy until the event fires;
* :class:`~repro.tasking.task.Sleep` — ``wait_for_us``: the task leaves the
  core and re-enters the (high-priority) ready queue when the time elapses;
* :class:`~repro.tasking.task.BlockOn` — park until an event fires, then
  re-enter the ready queue (library pollers with no pending work).

CPU charged by substrate calls during a synchronous step is realized as a
core-busy timeout immediately after the step, keeping the worker's
timeline consistent with the charges.
"""

from __future__ import annotations

from collections import deque
from types import GeneratorType
from typing import Deque, List, Optional, TYPE_CHECKING

from repro.sim.context import AccumulatingSink
from repro.sim.events import Event
from repro.tasking.task import BlockOn, Sleep, Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.tasking.runtime import Runtime


class ReadyQueue:
    """Two-level FIFO: resumed/priority tasks before ordinary ready tasks."""

    def __init__(self) -> None:
        self._high: Deque[Task] = deque()
        self._normal: Deque[Task] = deque()
        self._waiters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._high) + len(self._normal)

    def push(self, task: Task, high: bool = False) -> None:
        if self._waiters:
            self._waiters.popleft().succeed(task)
            return
        (self._high if high else self._normal).append(task)

    def pop_event(self, engine) -> Event:
        """Event that fires with the next available task."""
        ev = Event(engine)
        if self._high:
            ev.succeed(self._high.popleft())
        elif self._normal:
            ev.succeed(self._normal.popleft())
        else:
            self._waiters.append(ev)
        return ev


class Worker:
    """One simulated core executing tasks."""

    def __init__(self, runtime: "Runtime", index: int):
        self.runtime = runtime
        self.index = index
        self.engine = runtime.engine
        self.sink = AccumulatingSink()
        self.busy_time = 0.0
        self.tasks_run = 0
        self.proc = self.engine.process(self._loop())
        self.proc.context = self.sink
        self.proc.name = f"{runtime.name}.worker{index}"

    # ------------------------------------------------------------------
    def _loop(self):
        rt = self.runtime
        eng = self.engine
        dispatch_cost = rt.config.dispatch_overhead
        while True:
            task = yield rt._ready.pop_event(eng)
            if task is rt._shutdown_sentinel:
                return
            if dispatch_cost > 0.0:
                self.busy_time += dispatch_cost
                yield eng.timeout(dispatch_cost)
            yield from self._drive(task)

    def _drive(self, task: Task):
        rt = self.runtime
        eng = self.engine
        self.tasks_run += 1
        on_core_since = eng.now

        resumed = task.generator is not None
        if not resumed:
            task.state = TaskState.RUNNING
            task.started_at = eng.now
            tr = eng.tracer
            if tr.enabled and eng.now > task.ready_at:
                tr.span("tasking", "ready_wait", task.ready_at, eng.now,
                        rank=rt.name, lane=f"w{self.index}",
                        task=task.label, uid=task.uid)
        else:
            task.state = TaskState.RUNNING
            task.suspended_time += eng.now - task._suspend_started

        send_value = None
        if not resumed and task.body is not None:
            rt.current_task = task
            try:
                result = task.body(task)
            finally:
                rt.current_task = None
            if isinstance(result, GeneratorType):
                task.generator = result
            else:
                yield from self._realize(task)
                self._emit_on_core(task, on_core_since, "finished")
                self._on_body_done(task)
                return
        elif task.body is None:
            self._emit_on_core(task, on_core_since, "finished")
            self._on_body_done(task)
            return
        else:
            # resumed from Sleep: report actual off-core time (wait_for_us
            # returns the time slept, paper §V-B)
            send_value = eng.now - task._suspend_started

        while True:
            rt.current_task = task
            try:
                item = task.generator.send(send_value)
            except StopIteration:
                rt.current_task = None
                yield from self._realize(task)
                self._emit_on_core(task, on_core_since, "finished")
                self._on_body_done(task)
                return
            except BaseException:
                rt.current_task = None
                raise
            rt.current_task = None
            yield from self._realize(task)

            if isinstance(item, Sleep):
                task.state = TaskState.SUSPENDED
                task._suspend_started = eng.now
                self._emit_on_core(task, on_core_since, "sleep")
                wake = eng.timeout(item.seconds)
                wake.add_callback(lambda _ev, t=task: rt._ready.push(t, high=True))
                return  # core freed; another worker resumes the task
            if isinstance(item, BlockOn):
                task.state = TaskState.SUSPENDED
                task._suspend_started = eng.now
                self._emit_on_core(task, on_core_since, "park")
                item.event.add_callback(lambda _ev, t=task: rt._ready.push(t, high=True))
                return
            if isinstance(item, Event):
                before = eng.now
                send_value = yield item  # core busy-held (blocking call)
                self.busy_time += eng.now - before
                task.cpu_time += eng.now - before
                continue
            raise rt._error(
                f"task {task.label}#{task.uid} yielded {item!r}; expected "
                "Event, Sleep, or BlockOn"
            )

    def _emit_on_core(self, task: Task, t0: float, outcome: str) -> None:
        """One on-core interval of ``task`` on this worker (a task-state
        timeline lane per core, like the paper's Paraver views)."""
        tr = self.engine.tracer
        if tr.enabled:
            tr.span("tasking", task.label, t0, self.engine.now,
                    rank=self.runtime.name, lane=f"w{self.index}",
                    uid=task.uid, outcome=outcome)

    def _realize(self, task: Task):
        """Turn lazily-charged CPU into core-busy simulated time."""
        dt = self.sink.take()
        if dt > 0.0:
            self.busy_time += dt
            task.cpu_time += dt
            yield self.engine.timeout(dt)

    def _on_body_done(self, task: Task) -> None:
        task.state = TaskState.FINISHED
        task.finished_at = self.engine.now
        if task.events == 0:
            self.runtime._complete(task)
        # else: stays FINISHED (grey in Fig. 1) until pollers fulfill events
