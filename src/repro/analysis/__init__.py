"""Correctness analysis for the simulated stack (docs/analysis.md).

Dynamic checkers (zero-cost when disabled, bit-identical when enabled):

* :class:`AnalysisPipeline` — the hook hub installed as
  ``engine.analysis``; hosts the vector-clock RMA race detector
  (:mod:`repro.analysis.races`), the wait-for deadlock diagnoser
  (:mod:`repro.analysis.deadlock`), and the finalize-time resource lint
  (:mod:`repro.analysis.resources`). Enabled per job via
  ``JobSpec(check="report"|"strict")`` or the ``check=`` axis of
  :func:`repro.harness.run_variants`.

Static checkers:

* :func:`lint_paths` — the determinism lint behind
  ``python -m repro.analysis lint src/`` (:mod:`repro.analysis.lint`).
* :func:`verify_paths` — the CFG/dataflow communication-protocol
  verifier behind ``python -m repro.analysis verify`` / ``repro-verify``
  (:mod:`repro.analysis.static`). Each of its rules is the static twin
  of a dynamic checker; ``examples/static/`` validates them
  differentially.

This package's import-time dependencies are stdlib-only so the engine can
import :data:`NULL_ANALYSIS` without cycles; the simulation-aware checkers
load lazily when a pipeline is constructed.
"""

from repro.analysis.lint import LintFinding, lint_file, lint_paths
from repro.analysis.static import verify_file, verify_paths
from repro.analysis.pipeline import (
    NULL_ANALYSIS,
    SEV_ERROR,
    SEV_WARNING,
    AnalysisError,
    AnalysisPipeline,
    Finding,
)

__all__ = [
    "AnalysisError",
    "AnalysisPipeline",
    "Finding",
    "LintFinding",
    "NULL_ANALYSIS",
    "SEV_ERROR",
    "SEV_WARNING",
    "lint_file",
    "lint_paths",
    "verify_file",
    "verify_paths",
]
