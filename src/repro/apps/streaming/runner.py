"""Entry point for the Streaming benchmark."""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.apps.streaming.common import StreamingParams
from repro.apps.streaming.variants import make_ranks, mpi_only_main, tagaspi_main, tampi_main
from repro.harness.metrics import VariantResult
from repro.harness.runner import JobSpec, build_job

_MAINS = {"mpi": mpi_only_main, "tampi": tampi_main, "tagaspi": tagaspi_main}


def run_streaming(spec: JobSpec, params: StreamingParams,
                  collect_output: bool = False, tracer=None) -> VariantResult:
    """Run the Streaming benchmark; with ``collect_output`` (data mode) the
    result's ``extra['outputs']`` maps last-node rank -> final chunk data.
    ``tracer`` (a :class:`repro.trace.Tracer`) records the run's timeline."""
    if spec.n_nodes < 2:
        raise ValueError("the pipeline needs at least 2 nodes")
    if tracer is None and spec.perf:
        from repro.trace import Tracer

        tracer = Tracer(progress_every=None)
    job = build_job(spec, tracer=tracer)
    ranks = make_ranks(job, params)
    outputs: Dict = {}
    main = _MAINS[spec.variant]
    procs = [main(job, params, sr, outputs) for sr in ranks]
    sim_time = job.run(procs)
    result = VariantResult(
        variant=spec.variant,
        n_nodes=spec.n_nodes,
        throughput=params.gelements(sim_time),
        sim_time=sim_time,
        extra=dict(job.metrics),
    )
    if spec.perf:
        from repro.perf import analyze_tracer

        report = analyze_tracer(tracer, variant=spec.variant,
                                cores_per_rank=spec.cores_per_rank)
        result.extra.update(report.extra_metrics())
    if collect_output:
        if not params.compute_data:
            raise ValueError("collect_output requires compute_data=True")
        result.extra["outputs"] = {r: a.copy() for r, a in outputs.items()}
    return result


def run_streaming_steady(spec: JobSpec, params: StreamingParams,
                         warm_chunks: int) -> VariantResult:
    """Steady-state throughput excluding pipeline fill (chunk-count
    delta of two runs)."""
    if not 0 < warm_chunks < params.chunks:
        raise ValueError("need 0 < warm_chunks < chunks")
    warm = dataclasses.replace(params, chunks=warm_chunks)
    res_warm = run_streaming(spec, warm)
    res_full = run_streaming(spec, params)
    dt = res_full.sim_time - res_warm.sim_time
    elems = (params.chunks - warm_chunks) * params.elements_per_chunk
    return VariantResult(
        variant=spec.variant,
        n_nodes=spec.n_nodes,
        throughput=elems / dt / 1e9,
        sim_time=dt,
        extra=dict(res_full.extra),
    )
