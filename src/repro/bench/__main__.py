from repro.bench import main

raise SystemExit(main())
