"""The three Gauss–Seidel implementations (paper §VI-A).

All variants exchange per-block-column boundary-row segments with the
upper/lower neighbour ranks:

* after updating its **last** block row at step *t*, a rank sends that row
  (per block column) downwards — the lower neighbour is waiting on it to
  start step *t* (the wavefront);
* after updating its **first** block row at step *t*, a rank sends that
  row upwards tagged for step *t+1* — the upper neighbour uses it as its
  "previous sweep" bottom halo;
* before the loop, first rows are sent upwards tagged for step 0 (initial
  state).

Tag / notification-id scheme: direction DOWN carries (step, block column),
direction UP carries (step+1, block column).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.gauss_seidel.common import (
    GSParams,
    block_compute_cost,
    gs_sweep_block,
    initial_grid,
    partition_rows,
)
from repro.apps.gauss_seidel.storage import (
    RankStorage,
    SEG_HALO_BOTTOM,
    SEG_HALO_TOP,
    SEG_LOCAL,
)
from repro.harness.runner import Job
from repro.tasking import In, InOut, Out

#: throttle for hybrid task submission (tasks in flight per rank)
_WINDOW_HIGH = 6000
_WINDOW_LOW = 3000


def make_storages(job: Job, params: GSParams) -> List[RankStorage]:
    n_ranks = job.spec.n_ranks
    grid = initial_grid(params) if params.compute_data else None
    ranges = partition_rows(params.rows, n_ranks)
    return [RankStorage(params, r, n_ranks, ranges[r], grid) for r in range(n_ranks)]


def _tag(step: int, direction: int, j: int, nbj: int) -> int:
    # direction: 0 = down (top halo of the receiver), 1 = up (bottom halo)
    return (step * 2 + direction) * nbj + j


def _noise_fn(job: Job, rank: int):
    """Per-rank multiplicative compute-time noise (machine.compute_jitter)."""
    sigma = job.spec.machine.compute_jitter
    if sigma <= 0.0 or job.spec.seed is None:
        return lambda cost: cost
    rng = job.app_rng("gs-noise", rank)
    return lambda cost: cost * rng.lognormal(0.0, sigma)


# ======================================================================
# MPI-only (optimized non-blocking, paper's baseline [6])
# ======================================================================

def mpi_only_main(job: Job, params: GSParams, st: RankStorage):
    """Main loop of one single-threaded MPI rank: pre-posted non-blocking
    receives, per-block sends issued as soon as the block is updated,
    send-completion waits deferred to the end of the step."""
    machine = job.spec.machine
    drv = job.drivers[st.rank]
    cols, bs = params.cols, params.block_size
    nbj = cols // bs
    up, down = st.rank - 1, st.rank + 1
    cost = block_compute_cost(machine, st.local_rows, bs)
    noisy = _noise_fn(job, st.rank)

    def main(drv):
        # initial upward exchange: my first row is my upper neighbour's
        # step-0 bottom halo
        init_sends = []
        if st.has_upper:
            # one library entry for the whole first-row halo: all blocks go
            # to the same neighbour at the same instant, so the injection
            # rides the vectorized Cluster.send_batch wire path
            row = st.first_row()
            # analysis-ok: consumed at t==0, and timesteps >= 1 is
            # validated (GSParams), so the zero-trip path cannot happen
            init_sends = yield from drv.isend_batch(
                [row[j * bs : (j + 1) * bs] for j in range(nbj)],
                up,
                [_tag(0, 1, j, nbj) for j in range(nbj)])

        for t in range(params.timesteps):
            recv_top = [None] * nbj
            recv_bot = [None] * nbj
            if st.has_upper:
                for j in range(nbj):
                    recv_top[j] = yield from drv.irecv(
                        st.halo_top[j * bs : (j + 1) * bs], up, _tag(t, 0, j, nbj))
            if st.has_lower:
                for j in range(nbj):
                    recv_bot[j] = yield from drv.irecv(
                        st.halo_bottom[j * bs : (j + 1) * bs], down, _tag(t, 1, j, nbj))

            sends = []
            left_val_cols = st.side_zeros
            for j in range(nbj):
                if recv_top[j] is not None:
                    yield from drv.wait(recv_top[j])
                if recv_bot[j] is not None:
                    yield from drv.wait(recv_bot[j])
                if params.compute_data:
                    j0, j1 = j * bs, (j + 1) * bs
                    left = st.local[:, j0 - 1] if j > 0 else left_val_cols
                    right = (st.local[:, j1].copy() if j1 < cols else left_val_cols)
                    gs_sweep_block(
                        st.local[:, j0:j1],
                        st.halo_top[j0:j1],
                        st.halo_bottom[j0:j1],
                        left,
                        right,
                    )
                yield from drv.compute(noisy(cost))
                if st.has_lower:  # wavefront: neighbour waits on this now
                    req = yield from drv.isend(
                        st.last_row()[j * bs : (j + 1) * bs], down, _tag(t, 0, j, nbj))
                    sends.append(req)
                if st.has_upper:  # for the neighbour's next step
                    req = yield from drv.isend(
                        st.first_row()[j * bs : (j + 1) * bs], up,
                        _tag(t + 1, 1, j, nbj))
                    sends.append(req)
            if init_sends:
                sends.extend(init_sends)
                init_sends = []
            yield from drv.waitall(sends)

    return drv.spawn(main)


# ======================================================================
# Hybrid task graph (shared by TAMPI and TAGASPI variants)
# ======================================================================

def _hybrid_main(job: Job, params: GSParams, st: RankStorage, comm):
    """Build the per-timestep task graph on one rank.

    ``comm`` provides variant-specific pieces::

        comm.setup(main-generator-context)          # pre-loop exchange
        comm.recv_top_task(t, j)  -> body           # fills halo_top[j]
        comm.recv_bottom_task(t, j) -> body
        comm.send_down_task(t, j) -> body           # sends last block row
        comm.send_up_task(t, j) -> body             # sends first block row
    """
    rt = job.runtimes[st.rank]
    machine = job.spec.machine
    bs = params.block_size
    cols = params.cols
    nbj = cols // bs
    nbi = max(1, (st.local_rows + bs - 1) // bs)
    # row ranges per block row (last one may be short)
    rows_of = [
        (i * bs, min((i + 1) * bs, st.local_rows)) for i in range(nbi)
    ]
    noisy = _noise_fn(job, st.rank)

    def compute_body(t, i, j):
        i0, i1 = rows_of[i]
        j0, j1 = j * bs, (j + 1) * bs
        m = i1 - i0
        cost = block_compute_cost(machine, m, bs)

        def body(task):
            if params.compute_data:
                A = st.local
                top = st.halo_top[j0:j1] if i == 0 else A[i0 - 1, j0:j1]
                bottom = st.halo_bottom[j0:j1] if i == nbi - 1 else A[i1, j0:j1].copy()
                left = A[i0:i1, j0 - 1] if j > 0 else st.side_zeros[:m]
                right = (A[i0:i1, j1].copy() if j1 < cols else st.side_zeros[:m])
                gs_sweep_block(A[i0:i1, j0:j1], top, bottom, left, right)
            task.charge(noisy(cost))

        return body

    def main(rt):
        yield from comm.setup(rt)
        eng = rt.engine
        for t in range(params.timesteps):
            for j in range(nbj):
                if st.has_upper:
                    rt.submit(comm.recv_top_task(t, j), [Out(("ht", j))],
                              label="recv_top")
                if st.has_lower:
                    rt.submit(comm.recv_bottom_task(t, j), [Out(("hb", j))],
                              label="recv_bottom")
            for i in range(nbi):
                for j in range(nbj):
                    deps = [InOut(("b", i, j))]
                    deps.append(In(("ht", j)) if i == 0 else In(("b", i - 1, j)))
                    deps.append(In(("hb", j)) if i == nbi - 1 else In(("b", i + 1, j)))
                    if j > 0:
                        deps.append(In(("b", i, j - 1)))
                    if j < nbj - 1:
                        deps.append(In(("b", i, j + 1)))
                    rt.submit(compute_body(t, i, j), deps, label="compute")
                # boundary-row sends, submitted right after the block row
                # that produces them so they can start as soon as possible
                if i == 0 and st.has_upper:
                    for j in range(nbj):
                        rt.submit(comm.send_up_task(t, j), [In(("b", 0, j))],
                                  label="send_up",
                                  onready=comm.send_up_onready(t, j))
                if i == nbi - 1 and st.has_lower:
                    for j in range(nbj):
                        rt.submit(comm.send_down_task(t, j),
                                  [In(("b", nbi - 1, j))], label="send_down",
                                  onready=comm.send_down_onready(t, j))
            yield from rt.flush()
            if rt.outstanding > _WINDOW_HIGH:
                while rt.outstanding > _WINDOW_LOW:
                    yield eng.timeout(50e-6)
                rt.deps.prune()
        yield from rt.taskwait()

    return rt.spawn_main(main)


# ======================================================================
# TAMPI variant
# ======================================================================

class TampiGSComm:
    """Two-sided communication tasks using TAMPI_Iwait (paper §VI-A)."""

    def __init__(self, job: Job, params: GSParams, st: RankStorage):
        self.job = job
        self.params = params
        self.st = st
        self.mpi = job.mpi.rank(st.rank)
        self.tampi = job.tampi[st.rank]
        self.bs = params.block_size
        self.nbj = params.cols // params.block_size

    def setup(self, rt):
        # initial upward exchange as a task so it overlaps
        st, bs = self.st, self.bs
        if st.has_upper:
            for j in range(self.nbj):
                def body(task, j=j):
                    req = self.mpi.isend(
                        st.first_row()[j * bs : (j + 1) * bs],
                        st.rank - 1, _tag(0, 1, j, self.nbj))
                    self.tampi.iwait(req)
                rt.submit(body, [In(("b", 0, j))], label="send_up")
        return
        yield  # pragma: no cover - make this a generator

    def recv_top_task(self, t, j):
        st, bs = self.st, self.bs

        def body(task):
            req = self.mpi.irecv(st.halo_top[j * bs : (j + 1) * bs],
                                 st.rank - 1, _tag(t, 0, j, self.nbj))
            self.tampi.iwait(req)

        return body

    def recv_bottom_task(self, t, j):
        st, bs = self.st, self.bs

        def body(task):
            req = self.mpi.irecv(st.halo_bottom[j * bs : (j + 1) * bs],
                                 st.rank + 1, _tag(t, 1, j, self.nbj))
            self.tampi.iwait(req)

        return body

    def send_down_task(self, t, j):
        st, bs = self.st, self.bs

        def body(task):
            req = self.mpi.isend(st.last_row()[j * bs : (j + 1) * bs],
                                 st.rank + 1, _tag(t, 0, j, self.nbj))
            self.tampi.iwait(req)

        return body

    def send_up_task(self, t, j):
        st, bs = self.st, self.bs

        def body(task):
            req = self.mpi.isend(st.first_row()[j * bs : (j + 1) * bs],
                                 st.rank - 1, _tag(t + 1, 1, j, self.nbj))
            self.tampi.iwait(req)

        return body

    def send_up_onready(self, t, j):
        return None

    def send_down_onready(self, t, j):
        return None


# ======================================================================
# TAGASPI variant
# ======================================================================

class TagaspiGSComm:
    """One-sided communication tasks using TAGASPI (paper §VI-A).

    Senders ``write_notify`` directly into the neighbour's halo segment,
    multiplexing queues by block column; receivers just
    ``notify_iwait``. Notification values carry step+1 (non-zero).
    No ack notifications are needed: the reverse halo exchange already
    transitively orders each write after the consumption of the previous
    one (see tests/test_apps_gauss_seidel.py::test_no_overwrite_hazard).
    """

    def __init__(self, job: Job, params: GSParams, st: RankStorage):
        self.job = job
        self.params = params
        self.st = st
        self.gaspi = job.gaspi.rank(st.rank)
        self.tagaspi = job.tagaspi[st.rank]
        self.bs = params.block_size
        self.nbj = params.cols // params.block_size
        self.n_queues = job.spec.n_queues
        # register segments
        self.gaspi.segment_register(SEG_HALO_TOP, st.halo_top)
        self.gaspi.segment_register(SEG_HALO_BOTTOM, st.halo_bottom)
        self.gaspi.segment_register(SEG_LOCAL, st.local_segment_array())

    def setup(self, rt):
        st, bs = self.st, self.bs
        if st.has_upper:
            for j in range(self.nbj):
                def body(task, j=j):
                    seg, off, cnt = st.first_row_seg(j * bs, bs)
                    self.tagaspi.write_notify(
                        seg, off, st.rank - 1, SEG_HALO_BOTTOM, j * bs, cnt,
                        notif_id=j, notif_val=1, queue=j % self.n_queues)
                rt.submit(body, [In(("b", 0, j))], label="send_up")
        return
        yield  # pragma: no cover

    def recv_top_task(self, t, j):
        def body(task):
            self.tagaspi.notify_iwait(SEG_HALO_TOP, j)
        return body

    def recv_bottom_task(self, t, j):
        def body(task):
            self.tagaspi.notify_iwait(SEG_HALO_BOTTOM, j)
        return body

    def send_down_task(self, t, j):
        st, bs = self.st, self.bs

        def body(task):
            seg, off, cnt = st.last_row_seg(j * bs, bs)
            self.tagaspi.write_notify(
                seg, off, st.rank + 1, SEG_HALO_TOP, j * bs, cnt,
                notif_id=j, notif_val=t + 1, queue=j % self.n_queues)

        return body

    def send_up_task(self, t, j):
        st, bs = self.st, self.bs

        def body(task):
            seg, off, cnt = st.first_row_seg(j * bs, bs)
            self.tagaspi.write_notify(
                seg, off, st.rank - 1, SEG_HALO_BOTTOM, j * bs, cnt,
                notif_id=j, notif_val=t + 2, queue=j % self.n_queues)

        return body

    def send_up_onready(self, t, j):
        return None

    def send_down_onready(self, t, j):
        return None


def tampi_main(job: Job, params: GSParams, st: RankStorage):
    return _hybrid_main(job, params, st, TampiGSComm(job, params, st))


def tagaspi_main(job: Job, params: GSParams, st: RankStorage):
    return _hybrid_main(job, params, st, TagaspiGSComm(job, params, st))
