"""The correctness-analysis subsystem (docs/analysis.md): the vector-clock
RMA race detector, the wait-for deadlock diagnoser, the finalize-time
resource lint, the static determinism lint, and the harness ``check=``
axis. The acceptance bar: known-racy programs are flagged, deadlocks are
named, and every paper variant is race/deadlock-free under strict mode."""

import os
import textwrap

import numpy as np
import pytest

from repro.analysis import (
    NULL_ANALYSIS,
    SEV_ERROR,
    SEV_WARNING,
    AnalysisError,
    AnalysisPipeline,
    lint_file,
    lint_paths,
)
from repro.gaspi import GaspiContext
from repro.harness import JobSpec, MARENOSTRUM4, VariantError, build_job, run_variants
from repro.network import Cluster, INFINIBAND
from repro.sim import Engine, SimulationError

MACH4 = MARENOSTRUM4.with_cores(4)
N = 32


def checked_pair(n_ranks=2, **kwargs):
    """A cluster + GASPI context with every dynamic checker attached."""
    eng = Engine()
    cl = Cluster(eng, n_ranks, INFINIBAND)
    cl.place_ranks_block(n_ranks, 1)
    gaspi = GaspiContext(cl, n_queues=2)
    for r in range(n_ranks):
        gaspi.rank(r).segment_register(0, np.zeros(N))
    an = AnalysisPipeline(**kwargs).install(eng)
    an.attach_cluster(cl)
    an.attach_gaspi(gaspi)
    return eng, gaspi, an


class TestRaceDetector:
    def test_premature_read_is_a_wr_race(self):
        eng, gaspi, an = checked_pair()
        gaspi.rank(0).write_notify(0, 0, 1, 0, 0, N,
                                   notif_id=3, notif_val=1, queue=0)
        gaspi.rank(1).segment_access(0, 0, N, mode="read")
        eng.run()
        kinds = [f.kind for f in an.findings]
        assert "wr-race" in kinds
        (f,) = [f for f in an.findings if f.kind == "wr-race"]
        assert f.severity == SEV_ERROR and f.rank == "rank1"

    def test_consumed_notification_orders_the_read(self):
        eng, gaspi, an = checked_pair()
        gaspi.rank(0).write_notify(0, 0, 1, 0, 0, N,
                                   notif_id=3, notif_val=1, queue=0)

        def consumer():
            yield from gaspi.rank(1).notify_waitsome(0, 3, 1)
            gaspi.rank(1).segment_access(0, 0, N, mode="read")

        eng.run_until_complete(eng.process(consumer()))
        assert an.findings == []

    def test_disjoint_ranges_do_not_race(self):
        eng, gaspi, an = checked_pair()
        gaspi.rank(0).write_notify(0, 0, 1, 0, 0, N // 2,
                                   notif_id=3, notif_val=1, queue=0)
        gaspi.rank(1).segment_access(0, N // 2, N // 2, mode="read")
        eng.run()
        assert an.findings == []

    def test_same_channel_overwrite_is_a_lost_update(self):
        eng, gaspi, an = checked_pair()
        r0 = gaspi.rank(0)
        r0.write_notify(0, 0, 1, 0, 0, N, notif_id=3, notif_val=1, queue=0)
        r0.write_notify(0, 0, 1, 0, 0, N, notif_id=4, notif_val=2, queue=0)
        eng.run()
        assert [f.kind for f in an.findings] == ["lost-update"]

    def test_cross_queue_overlapping_puts_are_a_ww_race(self):
        eng, gaspi, an = checked_pair()
        gaspi.rank(0).write(0, 0, 1, 0, 0, N, queue=0)
        gaspi.rank(0).write(0, 0, 1, 0, 0, N, queue=1)
        eng.run()
        assert [f.kind for f in an.findings] == ["ww-race"]

    def test_notification_overwrite_is_lost(self):
        eng, gaspi, an = checked_pair()
        gaspi.rank(0).notify(1, 0, notif_id=7, notif_val=1, queue=0)
        gaspi.rank(0).notify(1, 0, notif_id=7,  # analysis-ok: seeded overwrite
                             notif_val=2, queue=0)
        eng.run()
        assert "lost-notification" in [f.kind for f in an.findings]

    def test_findings_are_deterministic(self):
        def run():
            eng, gaspi, an = checked_pair()
            r0 = gaspi.rank(0)
            r0.write_notify(0, 0, 1, 0, 0, N, notif_id=3, notif_val=1, queue=0)
            gaspi.rank(1).segment_access(0, 0, N, mode="read")
            r0.write_notify(0, 0, 1, 0, 0, N,  # analysis-ok: seeded overwrite
                            notif_id=3, notif_val=2, queue=0)
            eng.run()
            return an.findings

        a, b = run(), run()
        assert a == b and len(a) >= 3  # frozen dataclasses: field equality

    def test_checkers_individually_switchable(self):
        eng, gaspi, an = checked_pair(races=False)
        gaspi.rank(0).write(0, 0, 1, 0, 0, N, queue=0)
        gaspi.rank(0).write(0, 0, 1, 0, 0, N, queue=1)
        eng.run()
        assert an.findings == []
        assert an.race_detector is None


class TestDeadlockDiagnoser:
    def test_circular_notify_wait_names_the_cycle(self):
        eng, gaspi, an = checked_pair()

        def rank_main(r):
            yield from gaspi.rank(r).notify_waitsome(0, r, 1)

        eng.process(rank_main(0))
        eng.process(rank_main(1))
        with pytest.raises(SimulationError) as exc:
            eng.run(max_events=2000)
        msg = str(exc.value)
        assert "deadlock cycle: rank0 -> rank1 -> rank0" in msg
        assert "blocked in notify_waitsome" in msg
        assert [f.kind for f in an.findings] == ["deadlock-cycle"]

    def test_cycle_finding_reported_once(self):
        eng, gaspi, an = checked_pair()

        def rank_main(r):
            yield from gaspi.rank(r).notify_waitsome(0, r, 1)

        eng.process(rank_main(0))
        eng.process(rank_main(1))
        eng.run(until=1e-6)  # let both generators reach their wait
        assert "deadlock cycle" in an.deadlock_report()
        assert "deadlock cycle" in an.deadlock_report()
        assert len(an.findings) == 1

    def test_mpi_deadlock_diagnosed_through_the_harness(self):
        job = build_job(JobSpec(machine=MACH4, n_nodes=1, variant="mpi",
                                check="report"))

        def stuck(drv):
            buf = np.zeros(4)
            req = yield from drv.irecv(buf, 1, tag=9)  # nobody sends
            yield from drv.wait(req)

        proc = job.drivers[0].spawn(stuck)
        with pytest.raises(SimulationError) as exc:
            job.run([proc])
        msg = str(exc.value)
        assert "wait-for diagnosis" in msg
        assert "blocked in mpi_wait" in msg and "peer=1" in msg

    def test_no_blockers_reports_cleanly(self):
        _eng, _gaspi, an = checked_pair()
        assert "no blocked primitives" in an.deadlock_report()


class TestResourceLint:
    def test_unconsumed_notification_is_a_warning(self):
        eng, gaspi, an = checked_pair()
        gaspi.rank(0).notify(1, 0, notif_id=9, notif_val=5, queue=0)
        eng.run()
        an.finalize()
        assert an.findings == []
        kinds = [w.kind for w in an.warnings]
        assert "unconsumed-notification" in kinds
        assert all(w.severity == SEV_WARNING for w in an.warnings)

    def test_unfreed_mpi_request_is_a_warning(self):
        job = build_job(JobSpec(machine=MACH4, n_nodes=1, variant="mpi",
                                check="report"))

        def leaky(drv):
            buf = np.zeros(4)
            # posted, never matched (analysis-ok: seeded leak for the lint)
            yield from drv.irecv(buf, 1, tag=2)

        job.run([job.drivers[0].spawn(leaky)])
        assert "unfreed-mpi-request" in [w.kind for w in job.analysis.warnings]

    def test_strict_finalize_raises_with_findings_attached(self):
        eng, gaspi, an = checked_pair(strict=True)
        gaspi.rank(0).write(0, 0, 1, 0, 0, N, queue=0)
        gaspi.rank(0).write(0, 0, 1, 0, 0, N, queue=1)
        eng.run()
        with pytest.raises(AnalysisError, match="ww-race") as exc:
            an.finalize()
        assert [f.kind for f in exc.value.findings] == ["ww-race"]

    def test_report_mode_does_not_raise(self):
        eng, gaspi, an = checked_pair(strict=False)
        gaspi.rank(0).write(0, 0, 1, 0, 0, N, queue=0)
        gaspi.rank(0).write(0, 0, 1, 0, 0, N, queue=1)
        eng.run()
        assert [f.kind for f in an.finalize()] == ["ww-race"]


class TestHarnessCheckAxis:
    def test_invalid_check_rejected(self):
        with pytest.raises(VariantError, match="check"):
            JobSpec(machine=MACH4, n_nodes=1, variant="mpi", check="audit")

    def test_null_analysis_is_the_default(self):
        assert Engine().analysis is NULL_ANALYSIS
        assert NULL_ANALYSIS.enabled is False
        job = build_job(JobSpec(machine=MACH4, n_nodes=1, variant="mpi"))
        assert job.analysis is None

    def test_paper_variants_strict_clean(self):
        """Acceptance: the paper's communication patterns carry no error
        finding under every dynamic checker in strict mode."""
        from repro.apps.gauss_seidel import GSParams, run_gauss_seidel

        params = GSParams(rows=32, cols=32, timesteps=2, block_size=16,
                          compute_data=False)
        results = run_variants(run_gauss_seidel, MACH4, 2, params,
                               check="strict")
        for variant in ("mpi", "tampi", "tagaspi"):
            assert results[variant]["none"].sim_time > 0

    def test_strict_matches_unchecked_results(self):
        from repro.apps.streaming import StreamingParams, run_streaming

        params = StreamingParams(chunks=4, elements_per_chunk=512,
                                 block_size=128, compute_data=False)

        def run(check):
            spec = JobSpec(machine=MACH4, n_nodes=2, variant="tagaspi",
                           seed=5, check=check)
            return run_streaming(spec, params)

        plain, strict = run(None), run("strict")
        assert plain.sim_time == strict.sim_time
        assert plain.extra["messages"] == strict.extra["messages"]


#: synthetic violation -> the rule expected to fire on it
SNIPPETS = {
    ("time", "wallclock"):
        "import time\n\ndef f():\n    return time.time()\n",
    ("datetime", "wallclock"):
        "from datetime import datetime\n\ndef f():\n"
        "    return datetime.now()\n",
    ("random", "wallclock"):
        "import random\n\ndef f():\n    return random.random()\n",
    ("id", "id-key"): "def f(x, seen):\n    seen.add(id(x))\n",
    ("setcomp", "set-iteration"):
        "def f():\n    return [x for x in {3, 1, 2}]\n",
    ("setfor", "set-iteration"):
        "def f(a):\n    for x in set(a):\n        pass\n",
}


class TestStaticLint:
    @pytest.mark.parametrize("name,rule", sorted(SNIPPETS))
    def test_rule_fires(self, name, rule, tmp_path):
        p = tmp_path / f"{name}.py"
        p.write_text(SNIPPETS[(name, rule)])
        findings = lint_file(str(p))
        assert [f.rule for f in findings] == [rule]
        assert str(p) in str(findings[0])

    def test_pragma_exempts_a_line(self, tmp_path):
        p = tmp_path / "ok.py"
        p.write_text("import time\n\n"
                     "def f():\n"
                     "    return time.time()  # analysis-ok: benchmarking\n")
        assert lint_file(str(p)) == []

    def test_seeded_random_is_fine(self, tmp_path):
        p = tmp_path / "ok.py"
        p.write_text("import random\n\ndef f(seed):\n"
                     "    return random.Random(seed).random()\n")
        # only the module-level global-generator call would be flagged;
        # .random() on a seeded instance has root "random.Random(seed)"
        assert [f.rule for f in lint_file(str(p))] == []

    def test_bench_dirs_exempt_from_wallclock_only(self, tmp_path):
        d = tmp_path / "bench"
        d.mkdir()
        p = d / "timer.py"
        p.write_text("import time\n\ndef f(x, seen):\n"
                     "    seen.add(id(x))\n    return time.perf_counter()\n")
        assert [f.rule for f in lint_file(str(p))] == ["id-key"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        p = tmp_path / "broken.py"
        p.write_text("def f(:\n")
        assert [f.rule for f in lint_file(str(p))] == ["syntax"]

    def test_lint_paths_walks_deterministically(self, tmp_path):
        for name in ("b.py", "a.py"):
            (tmp_path / name).write_text("import time\nt = time.time()\n")
        findings = lint_paths([str(tmp_path)])
        assert [os.path.basename(f.path) for f in findings] == ["a.py", "b.py"]

    def test_repo_source_tree_is_clean(self):
        """The CI gate: the simulator's own source must pass its lint."""
        assert lint_paths(["src"]) == []


class TestAnalysisCLI:
    def test_lint_subcommand_clean_exit(self, capsys):
        from repro.analysis.cli import main

        assert main(["lint", "src"]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_lint_subcommand_failing_exit(self, tmp_path, capsys):
        from repro.analysis.cli import main

        p = tmp_path / "bad.py"
        p.write_text(textwrap.dedent("""\
            import time
            def f():
                return time.time()
        """))
        assert main(["lint", str(p)]) == 1
        out = capsys.readouterr().out
        assert "[wallclock]" in out and "1 finding(s)" in out
