"""Wildcards, tag spaces, and buffer helpers.

Buffers throughout the MPI model are numpy arrays (any shape; they are
viewed as flat byte sequences). ``None`` denotes a zero-byte message, used
for pure synchronization (the paper's §III notification pattern sends an
empty two-sided message).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mpi.errors import MPIError

#: match any sending rank
ANY_SOURCE = -1
#: match any tag
ANY_TAG = -2

#: tags at or above this value are reserved for internal collectives
COLLECTIVE_TAG_BASE = 1 << 30

#: wire size of protocol control messages (RTS/CTS/acks), bytes
CONTROL_BYTES = 32


def buffer_nbytes(buf: Optional[np.ndarray]) -> int:
    if buf is None:
        return 0
    if not isinstance(buf, np.ndarray):
        raise MPIError(f"buffers must be numpy arrays or None, got {type(buf).__name__}")
    return int(buf.nbytes)


def copy_into(dst: Optional[np.ndarray], src: Optional[np.ndarray]) -> None:
    """Copy the contents of ``src`` into ``dst``.

    Sizes must match; dtypes must match (the model does not re-interpret
    bytes across types). Works for non-contiguous destination views (halo
    columns) via element-wise flat iteration.
    """
    if dst is None and src is None:
        return
    if dst is None or src is None:
        raise MPIError("matched a zero-byte message with a non-empty buffer")
    if dst.nbytes != src.nbytes:
        raise MPIError(f"buffer size mismatch: recv {dst.nbytes}B vs send {src.nbytes}B")
    if dst.dtype != src.dtype:
        raise MPIError(f"dtype mismatch: recv {dst.dtype} vs send {src.dtype}")
    if dst.shape == src.shape:
        dst[...] = src
    else:
        dst.flat[:] = src.flat


def validate_tag(tag: int) -> None:
    if tag < 0:
        raise MPIError(f"user tags must be non-negative, got {tag}")
