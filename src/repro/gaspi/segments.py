"""GASPI memory segments and notification space.

A :class:`Segment` binds a numpy array (the remotely accessible memory) to
a per-segment notification table. GASPI semantics implemented:

* notification values are non-zero 32-bit unsigned ints;
* a notification becomes visible at the target only after the data of the
  same ``write_notify`` is in place (delivery writes data first, then the
  notification, atomically at one simulation instant);
* reading a notification with reset semantics (``consume``) atomically
  returns and clears it, so a value can be consumed exactly once.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.gaspi.errors import GaspiError


class Segment:
    """Remotely accessible memory plus its notification table."""

    __slots__ = ("seg_id", "array", "notifications", "arrival_counter")

    def __init__(self, seg_id: int, array: np.ndarray):
        if not isinstance(array, np.ndarray):
            raise GaspiError("segments are backed by numpy arrays")
        if not array.flags["C_CONTIGUOUS"]:
            raise GaspiError("segment arrays must be C-contiguous")
        self.seg_id = seg_id
        self.array = array
        #: arrived, unconsumed notifications: id -> value
        self.notifications: Dict[int, int] = {}
        #: total notifications ever arrived (diagnostics)
        self.arrival_counter = 0

    # -- memory ----------------------------------------------------------
    def view(self, offset: int, count: int) -> np.ndarray:
        """Flat element view [offset, offset+count) of the segment."""
        flat = self.array.reshape(-1)
        if offset < 0 or count < 0 or offset + count > flat.size:
            raise GaspiError(
                f"segment {self.seg_id}: range [{offset}, {offset + count}) "
                f"outside 0..{flat.size}"
            )
        return flat[offset : offset + count]

    # -- notifications ----------------------------------------------------
    def post_notification(self, notif_id: int, value: int) -> None:
        if value == 0:
            raise GaspiError("GASPI notification values must be non-zero")
        self.notifications[notif_id] = int(value)
        self.arrival_counter += 1

    def peek(self, notif_id: int) -> Optional[int]:
        """Value if arrived and unconsumed, else None. Does not reset."""
        return self.notifications.get(notif_id)

    def consume(self, notif_id: int) -> Optional[int]:
        """Atomically read-and-reset (gaspi_notify_reset). None if absent."""
        return self.notifications.pop(notif_id, None)

    def consume_any(self, begin: int, count: int) -> Optional[Tuple[int, int]]:
        """Read-and-reset the first arrived notification in
        [begin, begin+count); returns (id, value) or None."""
        for nid in range(begin, begin + count):
            val = self.notifications.pop(nid, None)
            if val is not None:
                return nid, val
        return None
