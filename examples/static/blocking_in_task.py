#!/usr/bin/env python
"""Seeded protocol bug #2: a blocking GASPI call inside a plain task body.

The paper's core rule (§III): blocking communication must never run
inside a task — that is what the task-aware TAMPI/TAGASPI wrappers are
for. In this simulator the blocking entry points are generator-shaped,
so a plain task body that calls ``notify_waitsome`` silently creates and
*discards* the generator: nothing blocks, and the task reads its inbox
while the producer's put is still in flight.

The static verifier's **blocking-in-task** rule flags the call site; the
dynamic race detector confirms the consequence at runtime with a
``wr-race`` error finding. The ``correct`` twin consumes the
notification from the rank's main generator before submitting the
reading task and stays clean under both checkers.

    python examples/static/blocking_in_task.py
"""

import numpy as np

from repro.analysis import AnalysisPipeline
from repro.analysis.static import verify_file
from repro.gaspi import GaspiContext
from repro.network import Cluster, INFINIBAND
from repro.sim import Engine
from repro.tasking import Out, Runtime, RuntimeConfig

N = 64
NID = 4


def build():
    eng = Engine()
    cl = Cluster(eng, 2, INFINIBAND)
    cl.place_ranks_block(2, 1)
    g = GaspiContext(cl, n_queues=2)
    g.rank(0).segment_register(0, np.arange(float(N)))
    g.rank(1).segment_register(0, np.zeros(N))
    an = AnalysisPipeline().install(eng)
    an.attach_cluster(cl)
    an.attach_gaspi(g)
    return eng, g, an


def broken():
    """BUG: the consumer task blocks (or rather: silently fails to)."""
    eng, g, an = build()
    rt = Runtime(eng, RuntimeConfig(n_cores=2), "rt1")
    an.attach_runtime(rt)
    gp1 = g.rank(1)

    def consume_body(task):
        gp1.notify_waitsome(0, NID, 1)  # discarded generator: no-op
        gp1.segment_access(0, 0, N, mode="read")

    def main(rt):
        rt.submit(consume_body, [Out("B")], label="consume")
        yield from rt.taskwait()

    proc = rt.spawn_main(main)
    g.rank(0).write_notify(0, 0, 1, 0, 0, N, notif_id=NID, notif_val=1,
                           queue=0)
    eng.run()
    assert proc.triggered
    return an


def correct():
    """The protocol: consume the notification *before* the reading task."""
    eng, g, an = build()
    rt = Runtime(eng, RuntimeConfig(n_cores=2), "rt1")
    an.attach_runtime(rt)
    gp1 = g.rank(1)

    def read_body(task):
        gp1.segment_access(0, 0, N, mode="read")

    def main(rt):
        yield from gp1.notify_waitsome(0, NID, 1)
        rt.submit(read_body, [Out("B")], label="read")
        yield from rt.taskwait()

    proc = rt.spawn_main(main)
    g.rank(0).write_notify(0, 0, 1, 0, 0, N, notif_id=NID, notif_val=1,
                           queue=0)
    eng.run()
    assert proc.triggered
    return an


def main():
    # static half: exactly the task-body call is flagged — the same
    # notify_waitsome in correct()'s main generator is fine
    flagged = [f for f in verify_file(__file__)
               if f.rule == "blocking-in-task"]
    assert len(flagged) == 1, flagged
    assert "notify_waitsome" in flagged[0].message, flagged[0]
    print(f"static : blocking-in-task flagged at line {flagged[0].line} "
          "(consume_body)")

    # dynamic half: the un-blocked read races the in-flight put
    an = broken()
    kinds = {f.kind for f in an.findings}
    assert "wr-race" in kinds, kinds
    print(f"dynamic: race detector agrees -> {sorted(kinds)}")

    an = correct()
    assert not an.findings, an.findings
    print("dynamic: correct twin is clean (0 error findings)")


if __name__ == "__main__":
    main()
