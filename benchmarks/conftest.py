"""Shared helpers for the benchmark suite.

Each ``test_fig*`` benchmark regenerates one table/figure of the paper's
evaluation (see DESIGN.md §3) at the downscaled machine sizes documented in
EXPERIMENTS.md, prints the series, and asserts the paper's qualitative
claims (who wins, where). Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a reproduced table so it lands in the pytest output."""
    sys.stdout.write("\n" + text + "\n")
    sys.stdout.flush()


def run_once(benchmark, fn):
    """Run the sweep exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
