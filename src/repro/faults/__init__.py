"""Deterministic, seeded fault injection and recovery.

The GASPI specification the paper builds on is explicitly timeout-based so
applications can survive link and process failures: every wait primitive
takes a timeout, and failures surface through error codes and the
``gaspi_state_vec_get`` health vector. This package adds that failure
dimension to the simulation:

* :class:`FaultPlan` — a frozen, declarative scenario: probabilistic and
  scripted message drop/duplication/reorder at the NIC, time-windowed link
  degradation and partitions, node stalls, and the retransmission /
  recovery parameters.
* :class:`FaultInjector` — executes a plan against one cluster, drawing all
  randomness from a ``repro.sim.rng`` stream so faulted runs are a pure
  function of ``(plan, seed)``; with no injector installed the transport's
  clean path is untouched (empty plan ⇒ bit-identical run).
* :class:`RecoveryPolicy` — what TAGASPI (purge + re-submit, bounded
  retries) and TAMPI (release) do about operations that time out.
* :class:`FaultReport` / :class:`FaultAbort` — structured post-mortem of a
  faulted run, raised on unrecoverable exhaustion when requested.

See ``docs/faults.md`` for the fault model and a sweep walkthrough.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    LinkDegradation,
    NodeStall,
    Partition,
    RecoveryPolicy,
    ScriptedFault,
)
from repro.faults.report import FaultAbort, FaultEvent, FaultReport

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "LinkDegradation",
    "Partition",
    "NodeStall",
    "ScriptedFault",
    "RecoveryPolicy",
    "FaultInjector",
    "FaultStats",
    "FaultReport",
    "FaultEvent",
    "FaultAbort",
]
