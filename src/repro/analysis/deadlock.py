"""Wait-for graph construction and deadlock diagnosis.

The diagnoser is *pull-based*: it inspects the pipeline's registries at
the moment something already went wrong (event-budget exhaustion, drained
event queue with processes still alive, or an explicit
``pipeline.deadlock_report()``) and reconstructs who is blocked on whom:

* **push-registered waits** — every blocking generator in the stack
  (``notify_waitsome``, ``gaspi_wait``, blocking ``request_wait``,
  ``MPI wait``/``waitall``, ``taskwait``) brackets its suspension with
  ``wait_enter``/``wait_exit``, so the active :class:`WaitRecord` set is
  exact;
* **MPI requests** — an unmatched pending recv or a rendezvous send stuck
  in handshake yields a directed edge owner → peer;
* **TAGASPI pending notifications** and **blocked tasks** — a task whose
  completion hangs on a notification that never arrives has no known
  producer, so it contributes edges to *every* other blocked process
  (conservative: a cycle through it is a candidate, and the per-process
  blocked-site listing lets the user finish the diagnosis).

Everything is iterated in sorted order so the report (and the cycle found
first) is a pure function of simulation state.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.pipeline import SEV_ERROR, _actor

#: wait sites whose producer is unknowable locally: they contribute
#: edges to every other blocked actor
_BROADCAST_SITES = ("notify_waitsome", "taskwait")


class DeadlockDiagnoser:
    """Builds the wait-for graph and names the cycle, if any."""

    def __init__(self, pipeline):
        self.pipeline = pipeline
        self._reported = False

    # ------------------------------------------------------------------
    def diagnose(self) -> str:
        """Return a per-process blocked-site summary plus the wait-for
        cycle if one exists; records a ``deadlock-cycle`` error finding
        (once) when a cycle is found."""
        sites, edges = self._collect()
        if not sites:
            return "wait-for diagnosis: no blocked primitives registered"
        lines = [f"wait-for diagnosis ({len(sites)} blocked process(es)):"]
        for actor in sorted(sites):
            for desc in sites[actor]:
                lines.append(f"  {actor}: {desc}")
            targets = sorted(edges.get(actor, ()))
            if targets:
                lines.append(f"  {actor} waits for: " + ", ".join(targets))
        cycle = self._find_cycle(sorted(sites), edges)
        if cycle:
            chain = " -> ".join(cycle + [cycle[0]])
            lines.append(f"deadlock cycle: {chain}")
            if not self._reported:
                self._reported = True
                self.pipeline.add_finding(
                    "deadlock", "deadlock-cycle", SEV_ERROR, cycle[0],
                    f"circular wait: {chain}; blocked sites: "
                    + "; ".join(f"{a}: {sites[a][0]}" for a in cycle),
                    cycle=tuple(cycle))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    def _collect(self) -> Tuple[Dict[str, List[str]], Dict[str, Set[str]]]:
        pl = self.pipeline
        sites: Dict[str, List[str]] = {}
        edges: Dict[str, Set[str]] = {}
        broadcast: List[str] = []  # actors whose producer is unknown

        def add_site(actor: str, desc: str) -> None:
            sites.setdefault(actor, []).append(desc)

        def add_edge(src: str, dst: str) -> None:
            if src != dst:
                edges.setdefault(src, set()).add(dst)

        for w in pl.active_waits:
            info = ", ".join(f"{k}={v}" for k, v in sorted(w.info.items()))
            add_site(w.actor, f"blocked in {w.site}({info}) "
                              f"since t={w.since:.6g}s")
            peer = w.info.get("peer")
            if peer is not None:
                add_edge(w.actor, _actor(peer))
            elif w.site in _BROADCAST_SITES:
                broadcast.append(w.actor)

        # live MPI requests: unmatched recvs and handshake-stuck sends
        for req in pl.mpi_requests:
            if req.done:
                continue
            actor = _actor(req.owner)
            state = req.state.name.lower()
            add_site(actor, f"{req.kind} tag={req.tag} "
                            f"peer=rank{req.peer} {state}")
            if req.kind == "recv" or state == "handshake":
                add_edge(actor, _actor(req.peer))

        # TAGASPI: tasks whose completion hangs on a notification
        for lib in pl.tagaspi_libs:
            actor = _actor(lib.gaspi.rank)
            for obj in lib._pending_notifs:
                add_site(actor, f"task {obj.task.label}#{obj.task.uid} "
                                f"awaits notification (seg {obj.seg_id}, "
                                f"id {obj.notif_id})")
                broadcast.append(actor)

        # blocked tasks (unreleased dependencies / unfulfilled events)
        per_rt: Dict[str, List[str]] = {}
        for (rt_name, _uid), task in sorted(pl.live_tasks.items()):
            st = task.state.name
            if st in ("RUNNING", "READY", "COMPLETED"):
                continue
            why = {
                "CREATED": f"{task.remaining_deps} unreleased dep(s)",
                "READY_BLOCKED": f"{task.pre_events} onready pre-event(s)",
                "FINISHED": f"{task.events} unfulfilled event(s)",
                "SUSPENDED": "suspended",
            }.get(st, st)
            per_rt.setdefault(rt_name, []).append(
                f"{task.label}#{task.uid} ({why})")
        for rt_name in sorted(per_rt):
            blocked = per_rt[rt_name]
            shown = ", ".join(blocked[:4])
            if len(blocked) > 4:
                shown += f", ... ({len(blocked) - 4} more)"
            add_site(rt_name, f"{len(blocked)} blocked task(s): {shown}")

        # unknown-producer waiters may be fed by anyone still blocked
        for actor in broadcast:
            for other in sites:
                add_edge(actor, other)
        return sites, edges

    # ------------------------------------------------------------------
    @staticmethod
    def _find_cycle(nodes: List[str],
                    edges: Dict[str, Set[str]]) -> List[str]:
        """First cycle by DFS in sorted node/edge order ([] if acyclic)."""
        done: Set[str] = set()
        for root in nodes:
            if root in done:
                continue
            path: List[str] = []
            on_path: Set[str] = set()

            def visit(node: str) -> List[str]:
                if node in on_path:
                    return path[path.index(node):]
                if node in done:
                    return []
                path.append(node)
                on_path.add(node)
                for nxt in sorted(edges.get(node, ())):
                    cyc = visit(nxt)
                    if cyc:
                        return cyc
                path.pop()
                on_path.discard(node)
                done.add(node)
                return []

            cycle = visit(root)
            if cycle:
                return cycle
        return []
