"""Tracing overhead guard: the null tracer must be (near-)free and fully
passive, and even a recording tracer must never move simulated results.

Not a paper figure — this protects the "zero cost when disabled" contract
of ``repro.trace`` (DESIGN note in src/repro/trace/tracer.py) so the
instrumentation threaded through every layer can stay on permanently.
"""

import time

import pytest

from benchmarks.conftest import emit, run_once
from repro.apps.gauss_seidel import GSParams, run_gauss_seidel
from repro.harness import JobSpec, MARENOSTRUM4, format_table
from repro.trace import Tracer

MACH4 = MARENOSTRUM4.with_cores(4)
PARAMS = GSParams(rows=96, cols=64, timesteps=4, block_size=16,
                  compute_data=False)


def _spec():
    return JobSpec(machine=MACH4, n_nodes=4, variant="tagaspi",
                   poll_period_us=25, seed=7)


def _timed(tracer):
    t0 = time.perf_counter()
    res = run_gauss_seidel(_spec(), PARAMS, tracer=tracer)
    return res, time.perf_counter() - t0


@pytest.mark.benchmark(group="trace")
def test_trace_overhead(benchmark):
    def sweep():
        # interleave to be fair to CPU frequency drift
        rows = []
        for label, mk in [("disabled", lambda: None),
                          ("recording", lambda: Tracer(progress_every=200))]:
            best = float("inf")
            res = None
            for _ in range(3):
                res, dt = _timed(mk())
                best = min(best, dt)
            rows.append((label, res, best))
        return rows

    rows = run_once(benchmark, sweep)
    (l0, r0, t0), (l1, r1, t1) = rows
    emit(format_table(
        "tracing overhead (Gauss-Seidel tagaspi, 4 nodes)",
        ["tracer", "sim_time (s)", "throughput", "wall (s)", "slowdown"],
        [[l0, r0.sim_time, r0.throughput, t0, 1.0],
         [l1, r1.sim_time, r1.throughput, t1, t1 / t0]],
    ))

    # passivity is a hard guarantee: recording must not move the simulation
    assert r0.sim_time == r1.sim_time
    assert r0.throughput == r1.throughput
    assert r0.extra["messages"] == r1.extra["messages"]
    # wall-clock overhead is environment-dependent; guard only against the
    # pathological (recording must not be order-of-magnitude slower)
    assert t1 < t0 * 10
