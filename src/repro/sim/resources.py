"""Instrumented shared resources for simulated contention.

:class:`Mutex` is the centrepiece: the evaluation reproduces the paper's
§VI-C claim that TAMPI's fine-grained performance collapses because of lock
wait inside ``MPI_THREAD_MULTIPLE`` implementations. The mutex therefore
records aggregate statistics (total wait time, total hold time, acquisition
count, maximum queue depth) that the harness reads back.

:class:`Resource` generalises to counted capacity (e.g. NIC DMA engines) and
:class:`Store` is a FIFO hand-off channel used by network endpoints.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event


@dataclass
class LockStats:
    """Aggregate contention statistics for a :class:`Mutex`/:class:`Resource`."""

    acquisitions: int = 0
    contended_acquisitions: int = 0
    total_wait_time: float = 0.0
    total_hold_time: float = 0.0
    max_queue_depth: int = 0

    def merged_with(self, other: "LockStats") -> "LockStats":
        return LockStats(
            acquisitions=self.acquisitions + other.acquisitions,
            contended_acquisitions=self.contended_acquisitions + other.contended_acquisitions,
            total_wait_time=self.total_wait_time + other.total_wait_time,
            total_hold_time=self.total_hold_time + other.total_hold_time,
            max_queue_depth=max(self.max_queue_depth, other.max_queue_depth),
        )


class Mutex:
    """A FIFO mutual-exclusion lock with wait/hold accounting.

    Usage from a process::

        yield mutex.acquire()
        try:
            yield engine.timeout(work)
        finally:
            mutex.release()
    """

    def __init__(self, engine: Engine, name: str = "mutex"):
        self.engine = engine
        self.name = name
        self.stats = LockStats()
        self._locked = False
        self._waiters: Deque[tuple[Event, float]] = deque()
        self._acquired_at: float = 0.0

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires when the caller holds the lock."""
        ev = Event(self.engine)
        if not self._locked:
            self._locked = True
            self._acquired_at = self.engine.now
            self.stats.acquisitions += 1
            ev.succeed()
        else:
            self._waiters.append((ev, self.engine.now))
            self.stats.contended_acquisitions += 1
            self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._waiters))
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._locked:
            return False
        self._locked = True
        self._acquired_at = self.engine.now
        self.stats.acquisitions += 1
        return True

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"release of unheld mutex {self.name!r}")
        now = self.engine.now
        self.stats.total_hold_time += now - self._acquired_at
        tr = self.engine.tracer
        if tr.enabled and now > self._acquired_at:
            tr.span("sim", f"lock_hold:{self.name}", self._acquired_at, now)
        if self._waiters:
            ev, enqueued_at = self._waiters.popleft()
            self.stats.acquisitions += 1
            self.stats.total_wait_time += now - enqueued_at
            if tr.enabled and now > enqueued_at:
                tr.span("sim", f"lock_wait:{self.name}", enqueued_at, now,
                        queue_depth=len(self._waiters))
            self._acquired_at = now
            ev.succeed()
        else:
            self._locked = False


class Resource:
    """Counted-capacity resource with FIFO admission (a semaphore)."""

    def __init__(self, engine: Engine, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.stats = LockStats()
        self._in_use = 0
        self._waiters: Deque[tuple[Event, float]] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        ev = Event(self.engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            self.stats.acquisitions += 1
            ev.succeed()
        else:
            self._waiters.append((ev, self.engine.now))
            self.stats.contended_acquisitions += 1
            self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._waiters))
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            ev, enqueued_at = self._waiters.popleft()
            self.stats.acquisitions += 1
            now = self.engine.now
            self.stats.total_wait_time += now - enqueued_at
            tr = self.engine.tracer
            if tr.enabled and now > enqueued_at:
                tr.span("sim", f"lock_wait:{self.name}", enqueued_at, now,
                        queue_depth=len(self._waiters))
            ev.succeed()
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO hand-off channel between processes.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item (immediately if one is queued). Items are delivered strictly in
    arrival order — the network layer relies on this for GASPI's
    per-(queue, target) ordering guarantee.
    """

    def __init__(self, engine: Engine, name: str = "store"):
        self.engine = engine
        self.name = name
        self._items: Deque[object] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.engine)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def peek_all(self) -> list:
        """Snapshot of queued items (diagnostics only)."""
        return list(self._items)
