"""``BENCH_<name>.json`` artifact writer.

One JSON file per benchmark, deterministic layout (sorted keys, stable
indent) so artifacts diff cleanly across runs and machines. Numpy scalars
are coerced to plain Python numbers — benchmark payloads routinely carry
metric sweeps that contain them.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays, dataclasses (e.g.
    :class:`~repro.harness.metrics.VariantResult`), and other non-JSON
    leaves recursively."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # numpy scalars expose item(); arrays expose tolist()
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "ndim", 1) == 0:
        return value.item()
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _jsonable(value.tolist())
    return repr(value)


def write_bench_json(name: str, payload: Dict[str, Any], outdir: str = ".") -> str:
    """Write ``payload`` to ``<outdir>/BENCH_<name>.json``; returns the path."""
    os.makedirs(outdir, exist_ok=True)
    path = os.path.join(outdir, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(_jsonable(payload), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
