"""Network messages.

A :class:`Message` is the unit the cluster transports between ranks. The
``protocol`` string routes delivery to the substrate endpoint registered for
``(dst_rank, protocol)`` — ``"mpi"`` or ``"gaspi"`` in this code base. The
``kind`` string is substrate-internal (e.g. ``"eager"``, ``"rts"``,
``"write_notify"``).

``payload`` may carry a numpy array (actual bytes being moved — the
simulation really copies data so numerical results are checkable) or a small
control tuple; ``nbytes`` is what the *wire* sees and is specified
separately because control messages (CTS, acks, notifications) are
metadata-sized regardless of their Python representation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_msg_ids = itertools.count()


@dataclass(slots=True)
class Message:
    src_rank: int
    dst_rank: int
    protocol: str
    kind: str
    nbytes: int
    payload: Any = None
    #: substrate-specific routing metadata (tags, segment ids, queue ids…)
    meta: dict = field(default_factory=dict)
    #: unique id, handy in traces
    uid: int = field(default_factory=lambda: next(_msg_ids))
    #: stamped by the cluster at injection/delivery
    injected_at: float = 0.0
    delivered_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Message #{self.uid} {self.protocol}.{self.kind} "
            f"{self.src_rank}->{self.dst_rank} {self.nbytes}B>"
        )
