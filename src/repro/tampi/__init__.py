"""Task-Aware MPI (TAMPI) — the paper's two-sided baseline library.

See :class:`repro.tampi.library.TAMPI`.
"""

from repro.tampi.library import TAMPI

__all__ = ["TAMPI"]
